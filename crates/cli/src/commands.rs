//! Subcommand implementations.

use pm_analysis::{bounds, equations, urn, ModelParams};
use pm_core::{
    run_trials, run_trials_traced, AdmissionPolicy, MergeConfig, PmError, PrefetchChoice,
    PrefetchStrategy, ScenarioBuilder, SimDuration, SyncMode, WriteSpec,
};
use pm_obs::{
    env_record_line, parse_manifest, render_manifest, render_report, run_suite, validation_points,
    ConvergencePolicy, NullProgress, ProgressSink, StderrProgress, SuiteOptions, TolerancePolicy,
    TrialsMode,
};
use pm_report::{Align, AsciiPlot, Table};
use pm_trace::{export, TraceMetrics};

use crate::args::Args;
use crate::batch;

const SCENARIO_KEYS: &[&str] = &[
    "runs", "blocks", "disks", "strategy", "n", "cache", "sync", "cpu-ms", "admission", "choice",
    "cap", "layout", "write-disks", "write-buffer", "trials", "seed",
];

/// Builds a [`MergeConfig`] from scenario options via [`ScenarioBuilder`].
fn scenario(args: &Args) -> Result<(MergeConfig, u32), PmError> {
    let runs: u32 = args.get_parsed("runs", 25)?;
    let blocks: u32 = args.get_parsed("blocks", 1000)?;
    let disks: u32 = args.get_parsed("disks", 5)?;
    let n: u32 = args.get_parsed("n", 10)?;
    let strategy = match args.get("strategy").unwrap_or("inter") {
        "none" => PrefetchStrategy::None,
        "intra" => PrefetchStrategy::IntraRun { n },
        "inter" => PrefetchStrategy::InterRun { n },
        // Adaptive: `--n` caps the depth; the floor is 1.
        "adaptive" => PrefetchStrategy::InterRunAdaptive { n_min: 1, n_max: n },
        other => return Err(PmError::Usage(format!("unknown strategy '{other}'"))),
    };
    let cpu_ms: f64 = args.get_parsed("cpu-ms", 0.0)?;
    if !(cpu_ms.is_finite() && cpu_ms >= 0.0) {
        return Err(PmError::Usage("--cpu-ms must be >= 0".into()));
    }
    let admission = match args.get("admission").unwrap_or("all-or-nothing") {
        "all-or-nothing" | "aon" => AdmissionPolicy::AllOrNothing,
        "greedy" => AdmissionPolicy::Greedy,
        other => return Err(PmError::Usage(format!("unknown admission policy '{other}'"))),
    };
    let choice = match args.get("choice").unwrap_or("random") {
        "random" => PrefetchChoice::Random,
        "least-held" => PrefetchChoice::LeastHeld,
        "head-proximity" => PrefetchChoice::HeadProximity,
        other => return Err(PmError::Usage(format!("unknown prefetch choice '{other}'"))),
    };
    let layout = match args.get("layout").unwrap_or("concatenated") {
        "concatenated" | "concat" => pm_core::DataLayout::Concatenated,
        "striped" => pm_core::DataLayout::Striped,
        other => return Err(PmError::Usage(format!("unknown layout '{other}'"))),
    };
    let cap: u32 = args.get_parsed("cap", 0)?;
    let write_disks: u32 = args.get_parsed("write-disks", 0)?;
    let write_buffer: u32 = args.get_parsed("write-buffer", 64)?;
    let trials: u32 = args.get_parsed("trials", 5)?;
    if trials == 0 {
        return Err(PmError::Usage("--trials must be positive".into()));
    }
    let mut builder = ScenarioBuilder::new(runs, disks)
        .run_blocks(blocks)
        .strategy(strategy)
        .sync_mode(if args.flag("sync") {
            SyncMode::Synchronized
        } else {
            SyncMode::Unsynchronized
        })
        .cpu_per_block(SimDuration::from_millis_f64(cpu_ms))
        .admission(admission)
        .prefetch_choice(choice)
        .layout(layout)
        .per_run_cap((cap > 0).then_some(cap))
        .write((write_disks > 0).then_some(WriteSpec {
            disks: write_disks,
            buffer_blocks: write_buffer,
        }))
        .seed(args.get_parsed("seed", 1992)?);
    if args.get("cache").is_some() {
        builder = builder.cache_blocks(args.get_parsed("cache", 0)?);
    }
    let cfg = builder.build()?;
    Ok((cfg, trials))
}

/// `pmerge simulate`
pub fn simulate(args: &Args) -> Result<(), PmError> {
    args.check_known(SCENARIO_KEYS)?;
    let (cfg, trials) = scenario(args)?;
    let summary = run_trials(&cfg, trials)?;
    let r = &summary.reports[0];
    println!(
        "scenario: {} runs x {} blocks on {} disks, {} {} (N={}), cache {} blocks",
        cfg.runs,
        cfg.run_blocks,
        cfg.disks,
        cfg.strategy.label(),
        cfg.sync.label(),
        cfg.strategy.depth(),
        cfg.cache_blocks,
    );
    println!("trials:   {trials}\n");
    println!("total time        {}", summary.ci_total_secs);
    println!("I/O concurrency   {:.2} (peak {})", summary.mean_concurrency, r.peak_busy_disks);
    if let Some(ratio) = summary.mean_success_ratio {
        println!("success ratio     {ratio:.3}");
    }
    println!(
        "cost breakdown    seek {:.1}s  latency {:.1}s  transfer {:.1}s (trial 1)",
        r.seek_total.as_secs_f64(),
        r.latency_total.as_secs_f64(),
        r.transfer_total.as_secs_f64()
    );
    println!(
        "requests          {} total, {} sequential streams",
        r.disk_requests, r.sequential_requests
    );
    if cfg.write.is_some() {
        println!(
            "write traffic     {} blocks, {:.1}s write-disk busy",
            r.write_blocks,
            r.write_busy.as_secs_f64()
        );
    }
    if !cfg.cpu_per_block.is_zero() {
        println!(
            "CPU               busy {:.1}s, stalled on I/O {:.1}s",
            r.cpu_busy.as_secs_f64(),
            r.cpu_stall.as_secs_f64()
        );
    }
    Ok(())
}

/// `pmerge trace`
pub fn trace(args: &Args) -> Result<(), PmError> {
    let mut allowed = SCENARIO_KEYS.to_vec();
    allowed.extend_from_slice(&["trace-out", "trace-format", "trace-limit"]);
    args.check_known(&allowed)?;
    let (cfg, trials) = scenario(args)?;
    let format = args.get("trace-format").unwrap_or("chrome");
    let limit: usize = args.get_parsed("trace-limit", 0usize)?;
    let (summary, sink) =
        run_trials_traced(&cfg, trials, 1, (limit > 0).then_some(limit))?;
    let events = sink.events();
    let rendered = match format {
        "chrome" => export::chrome_trace_json(&events),
        "csv" => export::csv(&events),
        "gantt" => export::gantt(&events, &export::GanttOptions::default()),
        other => {
            return Err(PmError::Usage(format!(
                "unknown trace format '{other}' (chrome | csv | gantt)"
            )))
        }
    };
    let Some(path) = args.get("trace-out") else {
        // Bare stream to stdout so it can be piped or redirected.
        print!("{rendered}");
        return Ok(());
    };
    std::fs::write(path, &rendered).map_err(|e| PmError::io(format!("cannot write '{path}'"), e))?;

    let m = TraceMetrics::from_events(&events);
    println!(
        "traced trial 1 of {trials}: {} events recorded{} -> {path} ({format})",
        events.len(),
        if sink.dropped() > 0 {
            format!(" ({} dropped by --trace-limit {limit})", sink.dropped())
        } else {
            String::new()
        },
    );
    println!(
        "span {:.3} s, total time {} over all trials\n",
        m.span_end.as_secs_f64(),
        summary.ci_total_secs
    );
    let mut t = Table::new(vec![
        "disk".into(),
        "util".into(),
        "requests".into(),
        "sequential".into(),
        "avg queue".into(),
    ]);
    for i in 1..5 {
        t.set_align(i, Align::Right);
    }
    let span_ns = m.span_end.as_nanos() as f64;
    let lane_row = |t: &mut Table, name: String, lane: &pm_trace::DiskLaneMetrics| {
        t.add_row(vec![
            name,
            format!("{:.2}", lane.utilization(m.span_end)),
            lane.requests.to_string(),
            lane.sequential.to_string(),
            format!("{:.2}", lane.queue_depth.average_until(span_ns).unwrap_or(0.0)),
        ]);
    };
    for (d, lane) in m.input_disks.iter().enumerate() {
        lane_row(&mut t, format!("input {d}"), lane);
    }
    for (d, lane) in m.output_disks.iter().enumerate() {
        lane_row(&mut t, format!("output {d}"), lane);
    }
    println!("{}", t.render());
    println!(
        "demand misses     {} ({} per merged block)",
        m.demand_misses,
        m.miss_rate().map_or_else(|| "-".into(), |r| format!("{r:.3}")),
    );
    if m.prefetch_batches > 0 {
        println!(
            "prefetch batches  {}, group admit rate {}, {} blocks admitted / {} rejected",
            m.prefetch_batches,
            m.admit_rate().map_or_else(|| "-".into(), |r| format!("{r:.3}")),
            m.admitted_blocks,
            m.rejected_blocks,
        );
    }
    if let Some(lo) = m.min_free_at_miss {
        println!("cache low-water   {lo} free frames at the tightest demand miss");
    }
    Ok(())
}

/// `pmerge analyze`
pub fn analyze(args: &Args) -> Result<(), PmError> {
    args.check_known(&["runs", "disks", "n", "blocks"])?;
    let k: u32 = args.get_parsed("runs", 25)?;
    let d: u32 = args.get_parsed("disks", 5)?;
    let n: u32 = args.get_parsed("n", 10)?;
    let blocks: u64 = args.get_parsed("blocks", 1000u64)?;
    if k == 0 || d == 0 || n == 0 || blocks == 0 {
        return Err(PmError::Usage("all parameters must be positive".into()));
    }
    let p = ModelParams {
        run_blocks: blocks,
        ..ModelParams::paper()
    };
    let total = |tau: f64| equations::total_seconds(&p, k, tau);
    let mut t = Table::new(vec!["prediction".into(), "tau (ms/blk)".into(), "total (s)".into()]);
    t.set_align(1, Align::Right);
    t.set_align(2, Align::Right);
    let mut row = |name: &str, tau: f64| {
        t.add_row(vec![name.into(), format!("{tau:.3}"), format!("{:.1}", total(tau))]);
    };
    row("eq1: single disk, no prefetch", equations::tau_single_no_prefetch(&p, k));
    row("eq2: single disk, intra-run", equations::tau_single_intra(&p, k, n));
    row("eq3: D disks, no prefetch", equations::tau_multi_no_prefetch(&p, k, d));
    row("eq4: D disks, intra-run sync", equations::tau_multi_intra_sync(&p, k, d, n));
    row("eq5: D disks, inter-run sync", equations::tau_inter_sync(&p, k, d, n));
    println!("closed-form predictions for k={k}, D={d}, N={n}, {blocks}-block runs\n");
    println!("{}", t.render());
    println!(
        "urn-game concurrency of unsync intra-run: exact {:.2}, asymptotic {:.2} (max {d})",
        urn::expected_concurrency(d),
        urn::expected_concurrency_asymptotic(d)
    );
    println!(
        "unsync intra-run asymptote: {:.1} s;  transfer bounds: {:.1} s (1 disk), {:.1} s ({d} disks)",
        bounds::intra_unsync_asymptotic_secs(&p, k, d, n),
        bounds::single_disk_lower_bound_secs(&p, k),
        bounds::multi_disk_lower_bound_secs(&p, k, d)
    );
    Ok(())
}

/// `pmerge sweep`
pub fn sweep(args: &Args) -> Result<(), PmError> {
    let mut allowed = SCENARIO_KEYS.to_vec();
    allowed.extend_from_slice(&["param", "from", "to", "step"]);
    args.check_known(&allowed)?;
    let param = args.require("param")?.to_string();
    let from: f64 = args.get_parsed("from", 1.0)?;
    let to: f64 = args.get_parsed("to", 30.0)?;
    if !(from.is_finite() && to.is_finite() && from <= to) {
        return Err(PmError::Usage("--from must be <= --to".into()));
    }
    let default_step = ((to - from) / 14.0).max(if param == "cpu-ms" { 0.05 } else { 1.0 });
    let step: f64 = args.get_parsed("step", default_step)?;
    if step <= 0.0 {
        return Err(PmError::Usage("--step must be positive".into()));
    }
    let (base, trials) = scenario(args)?;

    let mut points = Vec::new();
    let mut x = from;
    while x <= to + 1e-9 {
        let mut cfg = base;
        match param.as_str() {
            "n" => {
                let n = x as u32;
                cfg.strategy = match cfg.strategy {
                    PrefetchStrategy::None | PrefetchStrategy::IntraRun { .. } => {
                        PrefetchStrategy::IntraRun { n }
                    }
                    PrefetchStrategy::InterRun { .. } => PrefetchStrategy::InterRun { n },
                    PrefetchStrategy::InterRunAdaptive { n_min, .. } => {
                        PrefetchStrategy::InterRunAdaptive { n_min, n_max: n.max(n_min) }
                    }
                };
                // Re-derive the default cache unless pinned explicitly.
                if args.get("cache").is_none() {
                    cfg.cache_blocks =
                        ScenarioBuilder::default_cache_blocks(cfg.runs, cfg.strategy);
                }
            }
            "cache" => cfg.cache_blocks = x as u32,
            "cpu-ms" => cfg.cpu_per_block = SimDuration::from_millis_f64(x),
            "disks" => cfg.disks = x as u32,
            other => return Err(PmError::Usage(format!("cannot sweep '{other}'"))),
        }
        cfg.validate().map_err(|e| PmError::Usage(format!("at {param}={x}: {e}")))?;
        let summary = run_trials(&cfg, trials)?;
        points.push((x, summary.mean_total_secs, summary.mean_success_ratio));
        x += step;
    }

    let mut t = Table::new(vec![param.clone(), "total (s)".into(), "success ratio".into()]);
    t.set_align(1, Align::Right);
    t.set_align(2, Align::Right);
    for &(x, secs, ratio) in &points {
        t.add_row(vec![
            format!("{x:.3}"),
            format!("{secs:.2}"),
            ratio.map_or_else(|| "-".into(), |r| format!("{r:.3}")),
        ]);
    }
    let mut plot = AsciiPlot::new(format!("total time vs {param}"), 64, 16);
    plot.add_series("total (s)", points.iter().map(|&(x, y, _)| (x, y)).collect());
    println!("{}", plot.render());
    println!("{}", t.render());
    Ok(())
}


/// `pmerge batch <file>`
pub fn run_batch(args: &Args) -> Result<(), PmError> {
    args.check_known(&["file", "trials", "seed"])?;
    let path = args.require("file")?;
    let contents = std::fs::read_to_string(path)
        .map_err(|e| PmError::io(format!("cannot read '{path}'"), e))?;
    let lines = batch::parse_batch(&contents)?;
    let default_trials: u32 = args.get_parsed("trials", 5)?;
    let default_seed: u64 = args.get_parsed("seed", 1992)?;

    let mut table = Table::new(vec![
        "scenario".into(),
        "total (s)".into(),
        "±95%".into(),
        "concurrency".into(),
        "success ratio".into(),
    ]);
    for i in 1..5 {
        table.set_align(i, Align::Right);
    }
    for line in lines {
        let mut largs = batch::line_args(&line)?;
        // Batch-level defaults apply when the line doesn't set them.
        if largs.get("trials").is_none() {
            largs = batch::line_args(&batch::BatchLine {
                name: line.name.clone(),
                tokens: {
                    let mut t = line.tokens.clone();
                    t.push("--trials".into());
                    t.push(default_trials.to_string());
                    if largs.get("seed").is_none() {
                        t.push("--seed".into());
                        t.push(default_seed.to_string());
                    }
                    t
                },
            })?;
        }
        let (cfg, trials) = scenario(&largs)
            .map_err(|e| PmError::Usage(format!("scenario '{}': {e}", line.name)))?;
        let summary = run_trials(&cfg, trials)?;
        table.add_row(vec![
            line.name,
            format!("{:.1}", summary.mean_total_secs),
            format!("{:.2}", summary.ci_total_secs.half_width),
            format!("{:.2}", summary.mean_concurrency),
            summary
                .mean_success_ratio
                .map_or_else(|| "-".into(), |r| format!("{r:.3}")),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}

/// Parses the validate-only options into a [`SuiteOptions`].
fn validate_options(args: &Args) -> Result<SuiteOptions, PmError> {
    let trials = match args.get("trials").unwrap_or("auto") {
        "auto" => {
            let rel_ci: f64 = args.get_parsed("rel-ci", 0.02)?;
            if !(rel_ci.is_finite() && rel_ci > 0.0) {
                return Err(PmError::Usage("--rel-ci must be positive".into()));
            }
            TrialsMode::Auto(ConvergencePolicy {
                rel_ci,
                min_trials: args.get_parsed("min-trials", 3u32)?,
                max_trials: args.get_parsed("max-trials", 12u32)?,
                ..ConvergencePolicy::default()
            })
        }
        t => TrialsMode::Fixed(
            t.parse()
                .map_err(|_| PmError::Usage(format!("--trials must be a count or 'auto', got '{t}'")))?,
        ),
    };
    let defaults = TolerancePolicy::default();
    let tolerance = TolerancePolicy {
        equation_rel: args.get_parsed("tol-eq", defaults.equation_rel)?,
        striped_rel: args.get_parsed("tol-striped", defaults.striped_rel)?,
        bound_slack: args.get_parsed("tol-bound", defaults.bound_slack)?,
        concurrency_rel: args.get_parsed("tol-conc", defaults.concurrency_rel)?,
    };
    Ok(SuiteOptions {
        trials,
        jobs: args.get_parsed("jobs", 0usize)?,
        tolerance,
        trace: args.flag("trace"),
        master_seed: args.get_parsed("seed", 1992)?,
    })
}

/// `pmerge validate`
///
/// Runs the standing validation suite (T1/T2 tables plus the Fig. 3.2
/// curves) and checks every point against the paper's closed forms.
/// A breached residual returns [`PmError::Tolerance`], which `main`
/// maps to exit status 1 (usage and I/O failures exit 2).
pub fn validate(args: &Args) -> Result<(), PmError> {
    args.check_known(&[
        "quick", "html", "manifest", "manifest-out", "trials", "rel-ci", "min-trials",
        "max-trials", "jobs", "seed", "trace", "record-env", "progress", "tol-eq",
        "tol-striped", "tol-bound", "tol-conc",
    ])?;
    let opts = validate_options(args)?;
    let points = validation_points(opts.master_seed, args.flag("quick"));
    let progress: Box<dyn ProgressSink> = if args.flag("progress")
        || std::io::IsTerminal::is_terminal(&std::io::stderr())
    {
        Box::new(StderrProgress::new())
    } else {
        Box::new(NullProgress)
    };
    let started = std::time::Instant::now();
    let records = run_suite(&points, &opts, progress.as_ref())?;
    let wall_secs = started.elapsed().as_secs_f64();

    let mut table = Table::new(vec![
        "case".into(),
        "model".into(),
        "predicted".into(),
        "simulated".into(),
        "ratio".into(),
        "trials".into(),
        "check".into(),
    ]);
    for i in 2..6 {
        table.set_align(i, Align::Right);
    }
    let mut breaches = Vec::new();
    let mut checked = 0usize;
    for r in &records {
        let (model, predicted, measured, ratio, verdict) = match &r.analytic {
            Some(a) => {
                checked += 1;
                if !a.pass {
                    breaches.push(format!("{} ({}: ratio {:.3})", r.label, a.kind, a.ratio));
                }
                let measured = if a.kind == "urn-E[D]" {
                    r.metrics.mean_concurrency
                } else {
                    r.metrics.mean_total_secs
                };
                (
                    a.kind.clone(),
                    format!("{:.2}", a.predicted),
                    format!("{measured:.2}"),
                    format!("{:.3}", a.ratio),
                    if a.pass { "pass" } else { "FAIL" },
                )
            }
            None => (
                "-".into(),
                "-".into(),
                format!("{:.2}", r.metrics.mean_total_secs),
                "-".into(),
                "n/a",
            ),
        };
        table.add_row(vec![
            r.label.clone(),
            model,
            predicted,
            measured,
            ratio,
            r.trials.to_string(),
            verdict.into(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "{} points, {} residual checks, {} breach(es) in {wall_secs:.1}s",
        records.len(),
        checked,
        breaches.len()
    );
    for b in &breaches {
        println!("  BREACH: {b}");
    }

    if let Some(path) = args.get("manifest-out").or_else(|| args.get("manifest")) {
        let mut out = render_manifest(&records);
        if args.flag("record-env") {
            out.push_str(&env_record_line(opts.jobs, wall_secs));
            out.push('\n');
        }
        std::fs::write(path, out).map_err(|e| PmError::io(format!("cannot write '{path}'"), e))?;
        println!("wrote {path}");
    }
    if let Some(path) = args.get("html") {
        std::fs::write(path, render_report(&records))
            .map_err(|e| PmError::io(format!("cannot write '{path}'"), e))?;
        println!("wrote {path}");
    }
    if breaches.is_empty() {
        Ok(())
    } else {
        Err(PmError::Tolerance(format!(
            "{} residual check(s) failed",
            breaches.len()
        )))
    }
}

/// `pmerge report`
///
/// Re-renders the HTML validation report from a saved manifest, so a
/// long suite run never needs repeating just to regenerate its report.
pub fn report(args: &Args) -> Result<(), PmError> {
    args.check_known(&["from", "html"])?;
    let path = args.require("from")?;
    let contents = std::fs::read_to_string(path)
        .map_err(|e| PmError::io(format!("cannot read '{path}'"), e))?;
    let records = parse_manifest(&contents).map_err(|e| PmError::Usage(format!("{path}: {e}")))?;
    if records.is_empty() {
        return Err(PmError::Usage(format!("'{path}' contains no manifest records")));
    }
    let html = render_report(&records);
    match args.get("html") {
        Some(out) => {
            std::fs::write(out, &html)
                .map_err(|e| PmError::io(format!("cannot write '{out}'"), e))?;
            println!("wrote {out} ({} records)", records.len());
        }
        // Bare stream to stdout so it can be piped or redirected.
        None => print!("{html}"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(ToString::to_string)).unwrap()
    }

    #[test]
    fn scenario_defaults_build_a_valid_config() {
        let (cfg, trials) = scenario(&args(&["simulate"])).unwrap();
        assert_eq!(cfg.runs, 25);
        assert_eq!(cfg.disks, 5);
        assert!(cfg.strategy.is_inter_run());
        assert_eq!(cfg.cache_blocks, 4 * 25 * 10);
        assert_eq!(trials, 5);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn scenario_parses_every_option() {
        let (cfg, trials) = scenario(&args(&[
            "simulate",
            "--runs", "10", "--blocks", "100", "--disks", "2",
            "--strategy", "intra", "--n", "4", "--cache", "80",
            "--sync", "--cpu-ms", "0.5", "--admission", "greedy",
            "--choice", "least-held", "--write-disks", "2",
            "--write-buffer", "16", "--trials", "3", "--seed", "7",
        ]))
        .unwrap();
        assert_eq!(cfg.runs, 10);
        assert_eq!(cfg.run_blocks, 100);
        assert_eq!(cfg.strategy, PrefetchStrategy::IntraRun { n: 4 });
        assert_eq!(cfg.sync, SyncMode::Synchronized);
        assert_eq!(cfg.cache_blocks, 80);
        assert_eq!(cfg.admission, AdmissionPolicy::Greedy);
        assert_eq!(cfg.prefetch_choice, PrefetchChoice::LeastHeld);
        assert_eq!(cfg.write, Some(WriteSpec { disks: 2, buffer_blocks: 16 }));
        assert_eq!(cfg.seed, 7);
        assert_eq!(trials, 3);
    }

    #[test]
    fn scenario_rejects_bad_values() {
        assert!(scenario(&args(&["simulate", "--strategy", "bogus"])).is_err());
        assert!(scenario(&args(&["simulate", "--cpu-ms", "-1"])).is_err());
        assert!(scenario(&args(&["simulate", "--trials", "0"])).is_err());
        assert!(scenario(&args(&["simulate", "--admission", "x"])).is_err());
        assert!(scenario(&args(&["simulate", "--choice", "x"])).is_err());
        // Invalid merged config (cache below initial load).
        assert!(scenario(&args(&["simulate", "--cache", "1"])).is_err());
    }

    #[test]
    fn default_cache_is_depth_based_for_every_strategy() {
        // k * depth for demand-side strategies, 4 * k * depth for
        // inter-run ones — the adaptive variant sizes on its floor
        // n_min = 1, NOT the --n ceiling.
        let cases = [
            ("none", 25),          // 25 * 1
            ("intra", 25 * 10),    // 25 * n
            ("inter", 4 * 25 * 10),// 4 * 25 * n
            ("adaptive", 4 * 25),  // 4 * 25 * n_min
        ];
        for (strategy, expected) in cases {
            let (cfg, _) = scenario(&args(&["simulate", "--strategy", strategy])).unwrap();
            assert_eq!(cfg.cache_blocks, expected, "strategy {strategy}");
        }
        // An explicit --cache always wins.
        let (cfg, _) =
            scenario(&args(&["simulate", "--strategy", "adaptive", "--cache", "500"])).unwrap();
        assert_eq!(cfg.cache_blocks, 500);
    }

    #[test]
    fn trace_writes_every_format() {
        let dir = std::env::temp_dir();
        let scenario_args = [
            "trace", "--runs", "4", "--blocks", "20", "--disks", "2",
            "--n", "2", "--trials", "2",
        ];
        for (format, probe) in [
            ("chrome", "\"traceEvents\""),
            ("csv", "at_ns,event"),
            ("gantt", "disk 0"),
        ] {
            let path = dir.join(format!("pmerge-trace-test.{format}"));
            let mut a: Vec<&str> = scenario_args.to_vec();
            let p = path.to_str().unwrap().to_string();
            a.extend_from_slice(&["--trace-format", format, "--trace-out", &p]);
            trace(&args(&a)).unwrap();
            let contents = std::fs::read_to_string(&path).unwrap();
            assert!(contents.contains(probe), "{format}: {contents:.80}");
            let _ = std::fs::remove_file(path);
        }
    }

    #[test]
    fn trace_limit_and_bad_format() {
        let path = std::env::temp_dir().join("pmerge-trace-limit.csv");
        let p = path.to_str().unwrap().to_string();
        trace(&args(&[
            "trace", "--runs", "4", "--blocks", "20", "--disks", "2", "--n", "2",
            "--trials", "1", "--trace-limit", "10", "--trace-format", "csv",
            "--trace-out", &p,
        ]))
        .unwrap();
        let contents = std::fs::read_to_string(&path).unwrap();
        // Header plus exactly the 10 retained events.
        assert_eq!(contents.lines().count(), 11);
        let _ = std::fs::remove_file(path);

        let err = trace(&args(&["trace", "--trace-format", "bogus"])).unwrap_err();
        assert!(err.to_string().contains("unknown trace format"));
        assert!(trace(&args(&["trace", "--trace-outt", "x"])).is_err());
    }

    #[test]
    fn simulate_runs_small_scenario() {
        simulate(&args(&[
            "simulate", "--runs", "4", "--blocks", "20", "--disks", "2",
            "--n", "2", "--trials", "2",
        ]))
        .unwrap();
    }

    #[test]
    fn analyze_prints_predictions() {
        analyze(&args(&["analyze", "--runs", "25", "--disks", "5", "--n", "10"])).unwrap();
        assert!(analyze(&args(&["analyze", "--runs", "0"])).is_err());
    }

    #[test]
    fn sweep_small_range() {
        sweep(&args(&[
            "sweep", "--param", "n", "--from", "1", "--to", "3", "--step", "1",
            "--runs", "4", "--blocks", "20", "--disks", "2", "--strategy", "intra",
            "--trials", "2",
        ]))
        .unwrap();
    }

    #[test]
    fn sweep_rejects_bad_ranges() {
        assert!(sweep(&args(&["sweep", "--param", "n", "--from", "5", "--to", "1"])).is_err());
        assert!(sweep(&args(&["sweep", "--param", "bogus", "--from", "1", "--to", "2"])).is_err());
        assert!(sweep(&args(&["sweep"])).is_err());
    }

    #[test]
    fn unknown_options_are_reported() {
        assert!(simulate(&args(&["simulate", "--rnus", "25"])).is_err());
    }

    #[test]
    fn batch_runs_a_file() {
        let path = std::env::temp_dir().join("pmerge-batch-test.txt");
        std::fs::write(
            &path,
            "a: runs=4 blocks=20 disks=2 strategy=intra n=2
             b: runs=4 blocks=20 disks=2 strategy=inter n=2 cache=40
",
        )
        .unwrap();
        let a = args(&["batch", "--file", path.to_str().unwrap(), "--trials", "1"]);
        run_batch(&a).unwrap();
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn batch_reports_bad_scenarios() {
        let path = std::env::temp_dir().join("pmerge-batch-bad.txt");
        std::fs::write(&path, "broken: cache=1
").unwrap();
        let a = args(&["batch", "--file", path.to_str().unwrap()]);
        let err = run_batch(&a).unwrap_err();
        assert!(err.to_string().contains("broken"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn batch_requires_file() {
        assert!(run_batch(&args(&["batch"])).is_err());
    }

    #[test]
    fn validate_options_parse() {
        let opts = validate_options(&args(&["validate"])).unwrap();
        assert_eq!(opts.master_seed, 1992);
        assert_eq!(opts.jobs, 0);
        assert!(matches!(opts.trials, TrialsMode::Auto(_)));
        assert_eq!(opts.tolerance, TolerancePolicy::default());

        let opts = validate_options(&args(&[
            "validate", "--trials", "4", "--jobs", "2", "--seed", "7", "--tol-eq", "0.001",
        ]))
        .unwrap();
        assert!(matches!(opts.trials, TrialsMode::Fixed(4)));
        assert_eq!(opts.jobs, 2);
        assert_eq!(opts.master_seed, 7);
        assert!((opts.tolerance.equation_rel - 0.001).abs() < 1e-12);

        let opts = validate_options(&args(&["validate", "--rel-ci", "0.05", "--max-trials", "6"]))
            .unwrap();
        match opts.trials {
            TrialsMode::Auto(p) => {
                assert!((p.rel_ci - 0.05).abs() < 1e-12);
                assert_eq!(p.max_trials, 6);
            }
            TrialsMode::Fixed(_) => panic!("expected auto"),
        }

        assert!(validate_options(&args(&["validate", "--trials", "soon"])).is_err());
        assert!(validate_options(&args(&["validate", "--rel-ci", "-1"])).is_err());
        assert!(validate(&args(&["validate", "--quik"])).is_err());
    }

    #[test]
    fn report_round_trips_a_manifest() {
        // validate is too slow for a unit test; render a manifest from the
        // library's suite driver on a tiny point instead.
        let cfg = ScenarioBuilder::new(4, 2).intra(5).run_blocks(40).build().unwrap();
        let points = vec![pm_obs::PointSpec {
            kind: pm_obs::RecordKind::T1Case,
            label: "tiny".into(),
            sweep: None,
            x: None,
            x_label: None,
            config: cfg,
        }];
        let opts = SuiteOptions {
            trials: TrialsMode::Fixed(2),
            ..SuiteOptions::new(1)
        };
        let records = run_suite(&points, &opts, &NullProgress).unwrap();
        let dir = std::env::temp_dir();
        let manifest = dir.join("pmerge-report-test.jsonl");
        let html = dir.join("pmerge-report-test.html");
        std::fs::write(&manifest, render_manifest(&records)).unwrap();

        let m = manifest.to_str().unwrap().to_string();
        let h = html.to_str().unwrap().to_string();
        report(&args(&["report", "--from", &m, "--html", &h])).unwrap();
        let rendered = std::fs::read_to_string(&html).unwrap();
        assert!(rendered.starts_with("<!DOCTYPE html>"));
        assert!(rendered.contains("tiny"));

        std::fs::write(&manifest, "not json\n").unwrap();
        assert!(report(&args(&["report", "--from", &m])).is_err());
        std::fs::write(&manifest, "").unwrap();
        assert!(report(&args(&["report", "--from", &m])).is_err());
        let _ = std::fs::remove_file(manifest);
        let _ = std::fs::remove_file(html);

        assert!(report(&args(&["report"])).is_err());
        assert!(report(&args(&["report", "--from", "/nonexistent/x.jsonl"])).is_err());
    }
}