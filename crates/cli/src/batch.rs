//! Batch scenario files.
//!
//! `pmerge batch <file>` runs every scenario in a plain-text file and
//! prints one results table. The format is line-based — one scenario per
//! line, a name, a colon, then the same `key=value` options the `simulate`
//! command takes:
//!
//! ```text
//! # k=25 comparison at a 1200-block cache
//! baseline:   runs=25 disks=1 strategy=none
//! intra-10:   runs=25 disks=5 strategy=intra n=10
//! inter-10:   runs=25 disks=5 strategy=inter n=10 cache=1200
//! adaptive:   runs=25 disks=5 strategy=adaptive n=20 cache=1200
//! ```
//!
//! Blank lines and `#` comments are ignored. Flag-like options (`sync`)
//! appear bare.

use pm_core::PmError;

use crate::args::Args;

/// One parsed scenario line: its name and synthesized argument list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchLine {
    /// Scenario name (text before the colon).
    pub name: String,
    /// Option tokens in `Args::parse` form (`--key`, `value`, …).
    pub tokens: Vec<String>,
}

/// Parses a batch file's contents.
///
/// # Errors
///
/// Returns a message naming the offending line.
pub fn parse_batch(contents: &str) -> Result<Vec<BatchLine>, PmError> {
    let mut lines = Vec::new();
    for (lineno, raw) in contents.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let Some((name, rest)) = line.split_once(':') else {
            return Err(PmError::Usage(format!(
                "line {}: expected 'name: key=value ...', got '{line}'",
                lineno + 1
            )));
        };
        let name = name.trim();
        if name.is_empty() {
            return Err(PmError::Usage(format!("line {}: empty scenario name", lineno + 1)));
        }
        let mut tokens = Vec::new();
        for word in rest.split_whitespace() {
            match word.split_once('=') {
                Some((k, v)) if !k.is_empty() && !v.is_empty() => {
                    tokens.push(format!("--{k}"));
                    tokens.push(v.to_string());
                }
                Some(_) => {
                    return Err(PmError::Usage(format!(
                        "line {}: malformed option '{word}'",
                        lineno + 1
                    )));
                }
                None => tokens.push(format!("--{word}")), // bare flag, e.g. sync
            }
        }
        lines.push(BatchLine {
            name: name.to_string(),
            tokens,
        });
    }
    if lines.is_empty() {
        return Err(PmError::Usage("batch file contains no scenarios".into()));
    }
    Ok(lines)
}

/// Builds the `Args` for one batch line (no subcommand).
///
/// # Errors
///
/// Propagates parse failures with the scenario name attached.
pub fn line_args(line: &BatchLine) -> Result<Args, PmError> {
    Args::parse(line.tokens.iter().cloned())
        .map_err(|e| PmError::Usage(format!("scenario '{}': {e}", line.name)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scenarios_and_skips_comments() {
        let text = "\
# a comment
baseline: runs=25 disks=1 strategy=none

inter: runs=25 disks=5 strategy=inter n=10 cache=1200  # trailing comment
synced: runs=4 disks=2 sync
";
        let lines = parse_batch(text).unwrap();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].name, "baseline");
        assert_eq!(lines[1].tokens, vec!["--runs", "25", "--disks", "5", "--strategy", "inter", "--n", "10", "--cache", "1200"]);
        assert_eq!(lines[2].tokens, vec!["--runs", "4", "--disks", "2", "--sync"]);
        let args = line_args(&lines[2]).unwrap();
        assert!(args.flag("sync"));
        assert_eq!(args.get("runs"), Some("4"));
    }

    #[test]
    fn rejects_missing_colon() {
        let err = parse_batch("just words\n").unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn rejects_empty_name_and_malformed_options() {
        assert!(parse_batch(": runs=4\n").unwrap_err().to_string().contains("empty scenario name"));
        assert!(parse_batch("x: runs=\n").unwrap_err().to_string().contains("malformed option"));
        assert!(parse_batch("x: =4\n").unwrap_err().to_string().contains("malformed option"));
    }

    #[test]
    fn rejects_empty_file() {
        assert!(parse_batch("# only comments\n\n").is_err());
    }
}
