//! Golden test of the `--metrics-out` Prometheus exposition.
//!
//! Runs the small deterministic `contend` mix and compares the export
//! byte-for-byte against the committed snapshot. Because histogram sums
//! accumulate in fixed point and label order is sorted at encode time,
//! the exposition is reproducible across machines and `--jobs` values —
//! any diff means the metric surface actually changed.
//!
//! To refresh after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p pm-cli --test metrics_golden
//! ```

use std::fs;
use std::process::Command;

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden/metrics_small.prom"
);

#[test]
fn contend_exposition_matches_golden() {
    let dir = std::env::temp_dir().join(format!("pm_metrics_golden_{}", std::process::id()));
    fs::create_dir_all(&dir).expect("create scratch dir");
    let out = dir.join("metrics_small.prom");

    let status = Command::new(env!("CARGO_BIN_EXE_pmerge"))
        .args([
            "contend",
            "--tenants",
            "2",
            "--disks",
            "2",
            "--cache",
            "24000",
            "--seed",
            "1992",
            "--metrics-out",
        ])
        .arg(&out)
        .status()
        .expect("run pmerge contend");
    assert!(status.success(), "pmerge contend failed: {status}");

    let produced = fs::read_to_string(&out).expect("read produced exposition");
    let _ = fs::remove_dir_all(&dir);

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::write(GOLDEN, &produced).expect("rewrite golden snapshot");
        return;
    }

    let golden = fs::read_to_string(GOLDEN)
        .expect("read tests/golden/metrics_small.prom (set UPDATE_GOLDEN=1 to create)");
    assert_eq!(
        produced, golden,
        "metrics exposition drifted from tests/golden/metrics_small.prom; \
         rerun with UPDATE_GOLDEN=1 if the change is intentional"
    );
}
