//! Golden snapshots of `pmerge plan` and end-to-end multi-pass `exec`.
//!
//! The snapshot files live in `tests/golden/`; refresh them after an
//! intentional output change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p pm-cli --test golden_plan
//! ```

use std::path::PathBuf;
use std::process::Command;

fn pmerge(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_pmerge"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `pmerge <args>` stdout against `tests/golden/<name>`,
/// rewriting the snapshot instead when `UPDATE_GOLDEN=1`.
fn check_golden(name: &str, args: &[&str]) {
    let (code, stdout, stderr) = pmerge(args);
    assert_eq!(code, Some(0), "pmerge {args:?} failed: {stderr}");
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &stdout).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        stdout,
        want,
        "pmerge {args:?} diverged from {}; run with UPDATE_GOLDEN=1 to refresh",
        path.display()
    );
}

#[test]
fn plan_two_pass_uniform_tree() {
    // k=64 at fan-in 8: a perfect two-pass tree, both policies agree on
    // the width.
    check_golden(
        "plan_k64_f8.txt",
        &[
            "plan", "--runs", "64", "--blocks", "50", "--disks", "4", "--strategy", "inter",
            "--n", "4", "--fan-in", "8",
        ],
    );
}

#[test]
fn plan_policy_divergence() {
    // k=9 at fan-in 8: greedy-max degenerates (8+1 then a near-total
    // 2-way pass), balanced plans 3-way merges throughout.
    check_golden(
        "plan_k9_f8.txt",
        &[
            "plan", "--runs", "9", "--blocks", "50", "--disks", "4", "--strategy", "inter",
            "--n", "4", "--fan-in", "8",
        ],
    );
}

#[test]
fn plan_trivial_single_pass_json() {
    // k <= F: one pass, one group, machine-readable.
    check_golden(
        "plan_trivial.json",
        &[
            "plan", "--runs", "4", "--blocks", "50", "--disks", "4", "--strategy", "inter",
            "--n", "4", "--fan-in", "8", "--plan-policy", "greedy-max", "--json",
        ],
    );
}

#[test]
fn exec_overwide_merge_exits_2_and_points_at_plan() {
    // 16 runs into a cache that only fans 8 ways: a configuration error
    // (exit 2) whose message names both commands of the escape hatch.
    let (code, _, stderr) = pmerge(&[
        "exec", "--records", "4000", "--memory", "250", "--cache", "32", "--disks", "2",
        "--strategy", "inter", "--n", "4",
    ]);
    assert_eq!(code, Some(2), "stderr: {stderr}");
    assert!(stderr.contains("16 runs exceed the cache-supported fan-in of 8"), "{stderr}");
    assert!(stderr.contains("pmerge plan"), "{stderr}");
    assert!(stderr.contains("--fan-in"), "{stderr}");
}

#[test]
fn exec_multipass_output_is_byte_identical_to_single_pass() {
    let dir = std::env::temp_dir().join(format!("pmerge-golden-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let single = dir.join("single.bin");
    let multi = dir.join("multi.bin");
    let manifest = dir.join("multi.jsonl");

    let base = [
        "exec", "--records", "4000", "--memory", "250", "--disks", "2", "--strategy", "inter",
        "--n", "2", "--seed", "7",
    ];
    let mut single_args: Vec<&str> = base.to_vec();
    let single_path = single.to_str().unwrap();
    single_args.extend(["--out", single_path]);
    let (code, _, stderr) = pmerge(&single_args);
    assert_eq!(code, Some(0), "single-pass failed: {stderr}");

    let mut multi_args: Vec<&str> = base.to_vec();
    let multi_path = multi.to_str().unwrap();
    let manifest_path = manifest.to_str().unwrap();
    multi_args.extend([
        "--fan-in", "4", "--plan-policy", "balanced", "--out", multi_path,
        "--manifest-out", manifest_path,
    ]);
    let (code, stdout, stderr) = pmerge(&multi_args);
    assert_eq!(code, Some(0), "multi-pass failed: {stderr}");
    assert!(stdout.contains("2 passes"), "{stdout}");
    assert!(stdout.contains("multiset-identical"), "{stdout}");

    let a = std::fs::read(&single).unwrap();
    let b = std::fs::read(&multi).unwrap();
    assert!(!a.is_empty());
    assert_eq!(a, b, "multi-pass output differs from single-pass");

    // The manifest carries one v2 record per pass plus a summary.
    let lines: Vec<String> = std::fs::read_to_string(&manifest)
        .unwrap()
        .lines()
        .map(str::to_owned)
        .collect();
    assert_eq!(lines.len(), 3, "expected 2 pass records + 1 summary");
    assert!(lines[0].contains("\"pass\":1"), "{}", lines[0]);
    assert!(lines[1].contains("\"pass\":2"), "{}", lines[1]);
    assert!(lines[2].contains("\"pass\":null"), "{}", lines[2]);

    let _ = std::fs::remove_dir_all(&dir);
}
