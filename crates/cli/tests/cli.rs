//! End-to-end tests of the `pmerge` binary.

use std::process::Command;

fn pmerge(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_pmerge"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_prints_usage() {
    let (ok, stdout, _) = pmerge(&["help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("simulate"));
}

#[test]
fn no_command_prints_usage() {
    let (ok, stdout, _) = pmerge(&[]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
}

#[test]
fn unknown_command_fails_with_message() {
    let (ok, _, stderr) = pmerge(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn simulate_small_scenario() {
    let (ok, stdout, stderr) = pmerge(&[
        "simulate", "--runs", "4", "--blocks", "30", "--disks", "2", "--n", "3", "--trials", "2",
        "--seed", "5",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("total time"));
    assert!(stdout.contains("I/O concurrency"));
}

#[test]
fn simulate_is_reproducible() {
    let args = [
        "simulate", "--runs", "4", "--blocks", "30", "--disks", "2", "--n", "3", "--trials", "2",
        "--seed", "5",
    ];
    let (_, a, _) = pmerge(&args);
    let (_, b, _) = pmerge(&args);
    assert_eq!(a, b);
}

#[test]
fn analyze_prints_equations() {
    let (ok, stdout, _) = pmerge(&["analyze", "--runs", "25", "--disks", "5", "--n", "10"]);
    assert!(ok);
    assert!(stdout.contains("eq5"));
    assert!(stdout.contains("urn-game"));
}

#[test]
fn sweep_produces_table_and_plot() {
    let (ok, stdout, stderr) = pmerge(&[
        "sweep", "--param", "n", "--from", "1", "--to", "3", "--step", "1", "--runs", "4",
        "--blocks", "20", "--disks", "2", "--strategy", "intra", "--trials", "1",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("total time vs n"));
    assert!(stdout.contains("total (s)"));
}

#[test]
fn invalid_option_is_rejected() {
    let (ok, _, stderr) = pmerge(&["simulate", "--bogus", "1"]);
    assert!(!ok);
    assert!(stderr.contains("unknown option"));
}

#[test]
fn invalid_scenario_is_rejected() {
    let (ok, _, stderr) = pmerge(&["simulate", "--cache", "1"]);
    assert!(!ok);
    assert!(stderr.contains("cache"));
}

#[test]
fn striped_layout_flag_works() {
    let (ok, stdout, stderr) = pmerge(&[
        "simulate", "--runs", "4", "--blocks", "40", "--disks", "2", "--strategy", "intra",
        "--n", "4", "--layout", "striped", "--trials", "1",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("total time"));
}

#[test]
fn exec_memory_backend_end_to_end() {
    let (ok, stdout, stderr) = pmerge(&[
        "exec", "--records", "4000", "--memory", "800", "--disks", "2", "--n", "2",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("verified: 4000 records"));
    assert!(stdout.contains("sim cross-check"));
}

#[test]
fn exec_file_backend_end_to_end() {
    let (ok, stdout, stderr) = pmerge(&[
        "exec", "--backend", "file", "--records", "4000", "--memory", "800", "--disks", "2",
        "--n", "2", "--jobs", "2",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("verified: 4000 records"));
}

#[test]
fn exec_latency_backend_cross_checks_and_writes_manifest() {
    let manifest = std::env::temp_dir().join("pmerge-e2e-exec.jsonl");
    let m = manifest.to_str().unwrap().to_string();
    let (ok, stdout, stderr) = pmerge(&[
        "exec", "--backend", "latency", "--records", "4000", "--memory", "800", "--disks", "2",
        "--n", "2", "--time-scale", "0.0005", "--manifest-out", &m,
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("ratio 1.0000) -> pass"), "{stdout}");
    let contents = std::fs::read_to_string(&manifest).unwrap();
    assert!(contents.contains("\"kind\":\"exec\""));
    let _ = std::fs::remove_file(manifest);
}

#[test]
fn exec_rejects_unknown_backend() {
    let (ok, _, stderr) = pmerge(&["exec", "--backend", "tape"]);
    assert!(!ok);
    assert!(stderr.contains("unknown backend"));
}

#[test]
fn batch_command_end_to_end() {
    let path = std::env::temp_dir().join("pmerge-e2e-batch.txt");
    std::fs::write(
        &path,
        "# comparison\nbaseline: runs=4 blocks=20 disks=1 strategy=none\nfast: runs=4 blocks=20 disks=2 strategy=inter n=2 cache=40\n",
    )
    .unwrap();
    let (ok, stdout, stderr) = pmerge(&["batch", "--file", path.to_str().unwrap(), "--trials", "1"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("baseline"));
    assert!(stdout.contains("fast"));
    let _ = std::fs::remove_file(path);
}
