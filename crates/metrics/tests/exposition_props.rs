//! Property tests of the determinism contract: the Prometheus text
//! exposition of a [`StackMetrics`] bundle is byte-identical for every
//! worker-thread count, as long as the *multiset* of observations is the
//! same. This is what lets `--metrics-out` commit to a golden snapshot
//! while the CLI runs with any `--jobs` value.

use std::sync::Arc;

use proptest::prelude::*;

use pm_metrics::{encode_text, MetricsSink, StackMetrics};

/// One recorded observation, pre-quantized so every interleaving feeds
/// bit-identical floats into the sink.
#[derive(Debug, Clone)]
struct Obs {
    disk: usize,
    tenant: usize,
    bytes: u64,
    /// Wait and service in whole microseconds (converted to seconds at
    /// the call site), keeping the fixed-point sums exactly commutative.
    wait_us: u32,
    service_us: u32,
}

fn obs_strategy() -> impl Strategy<Value = Obs> {
    (0usize..3, 0usize..2, 0u64..1 << 20, 0u32..2_000_000, 0u32..2_000_000).prop_map(
        |(disk, tenant, bytes, wait_us, service_us)| Obs {
            disk,
            tenant,
            bytes,
            wait_us,
            service_us,
        },
    )
}

fn record_all(metrics: &StackMetrics, observations: &[Obs], jobs: usize) {
    if jobs <= 1 {
        for o in observations {
            apply(metrics, o);
        }
        return;
    }
    std::thread::scope(|scope| {
        for chunk in observations.chunks(observations.len().div_ceil(jobs)) {
            scope.spawn(move || {
                for o in chunk {
                    apply(metrics, o);
                }
            });
        }
    });
}

fn apply(metrics: &StackMetrics, o: &Obs) {
    metrics.disk_io(
        o.disk,
        o.bytes,
        f64::from(o.wait_us) * 1e-6,
        f64::from(o.service_us) * 1e-6,
    );
    metrics.tenant_blocks(o.tenant, 1);
    metrics.tenant_wait(o.tenant, f64::from(o.wait_us) * 1e-6);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn exposition_is_byte_identical_across_worker_counts(
        observations in prop::collection::vec(obs_strategy(), 1..400),
        jobs in 2usize..6,
    ) {
        let names = ["alpha".to_string(), "beta".to_string()];
        let serial = Arc::new(StackMetrics::new(3, &names));
        record_all(&serial, &observations, 1);
        let threaded = Arc::new(StackMetrics::new(3, &names));
        record_all(&threaded, &observations, jobs);
        prop_assert_eq!(
            encode_text(&serial.snapshot()),
            encode_text(&threaded.snapshot())
        );
    }
}
