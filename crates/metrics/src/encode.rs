//! Prometheus text exposition (version 0.0.4).
//!
//! Renders a registry snapshot as the plain-text format scrapers consume:
//! `# HELP` / `# TYPE` headers, `name{label="value"} value` samples,
//! histogram `_bucket`/`_sum`/`_count` expansion with the `le` label and
//! a trailing `+Inf` bucket. Everything about the output is deterministic
//! — metrics in registration order, samples in numeric-aware label order,
//! floats in Rust's shortest-round-trip form — so two processes that made
//! the same observations emit byte-identical text regardless of thread
//! interleaving.

use std::fmt::Write as _;

use crate::registry::{MetricKind, MetricSnapshot, SampleValue};

/// Renders snapshots as Prometheus text exposition, ending with `# EOF`.
#[must_use]
pub fn encode_text(snapshots: &[MetricSnapshot]) -> String {
    let mut out = String::new();
    for m in snapshots {
        let exposed = exposed_name(m);
        let _ = writeln!(out, "# HELP {exposed} {}", escape_help(&m.help));
        let _ = writeln!(out, "# TYPE {exposed} {}", m.kind.as_str());
        for s in &m.samples {
            match &s.value {
                SampleValue::Counter(v) => {
                    sample_line(&mut out, &exposed, &s.labels, None, &format_u64(*v));
                }
                SampleValue::Gauge(v) => {
                    sample_line(&mut out, &exposed, &s.labels, None, &format_f64(*v));
                }
                SampleValue::Histogram(h) => {
                    let bucket = format!("{exposed}_bucket");
                    for (bound, cum) in &h.buckets {
                        sample_line(
                            &mut out,
                            &bucket,
                            &s.labels,
                            Some(&format_f64(*bound)),
                            &format_u64(*cum),
                        );
                    }
                    sample_line(&mut out, &bucket, &s.labels, Some("+Inf"), &format_u64(h.count));
                    sample_line(
                        &mut out,
                        &format!("{exposed}_sum"),
                        &s.labels,
                        None,
                        &format_f64(h.sum),
                    );
                    sample_line(
                        &mut out,
                        &format!("{exposed}_count"),
                        &s.labels,
                        None,
                        &format_u64(h.count),
                    );
                }
            }
        }
    }
    out.push_str("# EOF\n");
    out
}

/// The exposition name: counters gain `_total`, as in `prometheus_client`.
fn exposed_name(m: &MetricSnapshot) -> String {
    match m.kind {
        MetricKind::Counter => format!("{}_total", m.name),
        _ => m.name.clone(),
    }
}

fn sample_line(out: &mut String, name: &str, labels: &[(String, String)], le: Option<&str>, value: &str) {
    out.push_str(name);
    if !labels.is_empty() || le.is_some() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "{k}=\"{}\"", escape_label(v));
        }
        if let Some(le) = le {
            if !first {
                out.push(',');
            }
            let _ = write!(out, "le=\"{le}\"");
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

fn format_u64(v: u64) -> String {
    v.to_string()
}

/// Shortest-round-trip float; `NaN`/`+Inf`/`-Inf` per exposition spec.
fn format_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::Family;
    use crate::metric::{exponential_buckets, Counter, Gauge, Histogram};
    use crate::registry::Registry;
    use std::sync::Arc;

    #[test]
    fn counter_and_gauge_lines() {
        let mut r = Registry::new();
        let c = Arc::new(Counter::new());
        let g = Arc::new(Gauge::new());
        r.register("pm_reads", "Total reads.", Arc::clone(&c));
        r.register("pm_depth", "Queue depth.", Arc::clone(&g));
        c.inc_by(3);
        g.set(1.5);
        let text = encode_text(&r.snapshot());
        assert!(text.contains("# HELP pm_reads_total Total reads.\n"), "{text}");
        assert!(text.contains("# TYPE pm_reads_total counter\n"), "{text}");
        assert!(text.contains("pm_reads_total 3\n"), "{text}");
        assert!(text.contains("# TYPE pm_depth gauge\n"), "{text}");
        assert!(text.contains("pm_depth 1.5\n"), "{text}");
        assert!(text.ends_with("# EOF\n"), "{text}");
    }

    #[test]
    fn histogram_expands_buckets() {
        let mut r = Registry::new();
        let f: Arc<Family<Histogram>> = Arc::new(Family::new_with_constructor(&["disk"], || {
            Histogram::new(&exponential_buckets(0.1, 10.0, 2))
        }));
        r.register("pm_service_seconds", "Service time.", Arc::clone(&f));
        let h = f.get_or_create(&["0"]);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(50.0);
        let text = encode_text(&r.snapshot());
        assert!(text.contains("pm_service_seconds_bucket{disk=\"0\",le=\"0.1\"} 1\n"), "{text}");
        assert!(text.contains("pm_service_seconds_bucket{disk=\"0\",le=\"1\"} 2\n"), "{text}");
        assert!(text.contains("pm_service_seconds_bucket{disk=\"0\",le=\"+Inf\"} 3\n"), "{text}");
        assert!(text.contains("pm_service_seconds_sum{disk=\"0\"} 50.55\n"), "{text}");
        assert!(text.contains("pm_service_seconds_count{disk=\"0\"} 3\n"), "{text}");
    }

    #[test]
    fn labels_escape_and_sort() {
        let mut r = Registry::new();
        let f: Arc<Family<Counter>> = Arc::new(Family::new(&["tenant"]));
        r.register("pm_jobs", "Jobs.", Arc::clone(&f));
        f.get_or_create(&["t\"quote\""]).inc();
        f.get_or_create(&["t10"]).inc();
        f.get_or_create(&["t2"]).inc();
        let text = encode_text(&r.snapshot());
        assert!(text.contains("pm_jobs_total{tenant=\"t\\\"quote\\\"\"} 1\n"), "{text}");
        let p2 = text.find("tenant=\"t2\"").unwrap();
        let p10 = text.find("tenant=\"t10\"").unwrap();
        assert!(p10 < p2, "lexicographic fallback sorts t10 before t2: {text}");
    }

    #[test]
    fn special_floats_render_per_spec() {
        assert_eq!(format_f64(f64::NAN), "NaN");
        assert_eq!(format_f64(f64::INFINITY), "+Inf");
        assert_eq!(format_f64(f64::NEG_INFINITY), "-Inf");
        assert_eq!(format_f64(0.001), "0.001");
    }
}
