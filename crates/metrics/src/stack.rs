//! The workspace's standard metric bundle.
//!
//! [`StackMetrics`] pre-registers every family the prefetchmerge stack
//! records — per-disk I/O, per-tenant service outcomes, per-pass merge
//! totals, per-strategy simulation counters — and implements
//! [`MetricsSink`] by indexing into handles bound once at construction.
//! Recording is therefore a bounds check plus one or two relaxed atomic
//! adds; the label directory ([`Family`]) is only consulted at setup and
//! at pass boundaries.
//!
//! Label cardinality is fixed up front: `disk` and `tenant` label values
//! come from the construction arguments (indices out of range are
//! silently dropped rather than allocated), `pass` grows one cell per
//! merge pass, and `strategy` one cell per distinct strategy name.

use std::sync::Arc;

use crate::family::Family;
use crate::metric::{exponential_buckets, Counter, Gauge, Histogram};
use crate::registry::{MetricSnapshot, Registry};
use crate::sink::MetricsSink;

/// Duration histogram layout: 1e-5 s … ~2.6 s in ×4 steps, then `+Inf`.
///
/// Spans modeled block service times (hundreds of microseconds), real
/// file-backend reads, and injected-latency waits without exceeding a
/// dozen buckets per series.
#[must_use]
pub fn duration_buckets() -> Vec<f64> {
    exponential_buckets(1e-5, 4.0, 10)
}

/// Batch-size histogram layout: 1, 2, 4, … 128, then `+Inf` — spans a
/// depth-1 compat shim through the deepest supported ring (depth 128).
#[must_use]
pub fn batch_buckets() -> Vec<f64> {
    exponential_buckets(1.0, 2.0, 8)
}

struct DiskCell {
    requests: Arc<Counter>,
    bytes: Arc<Counter>,
    depth: Arc<Gauge>,
    service: Arc<Histogram>,
    wait: Arc<Histogram>,
    submit_batch: Arc<Histogram>,
}

struct TenantCell {
    name: String,
    grant: Arc<Gauge>,
    blocks: Arc<Counter>,
    wait: Arc<Histogram>,
    slowdown: Arc<Gauge>,
    wfq_lag: Arc<Gauge>,
}

/// Every metric family the stack records, pre-bound for lock-free
/// recording.
pub struct StackMetrics {
    registry: Registry,
    disks: Vec<DiskCell>,
    tenants: Vec<TenantCell>,
    reap_batch: Arc<Histogram>,
    pass_blocks: Arc<Family<Counter>>,
    pass_records: Arc<Family<Counter>>,
    trial_count: Arc<Family<Counter>>,
    trial_blocks: Arc<Family<Counter>>,
    trial_demand: Arc<Family<Counter>>,
    trial_fallback: Arc<Family<Counter>>,
    trial_full: Arc<Family<Counter>>,
}

impl std::fmt::Debug for StackMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StackMetrics")
            .field("disks", &self.disks.len())
            .field("tenants", &self.tenants.len())
            .finish_non_exhaustive()
    }
}

impl StackMetrics {
    /// A bundle for `disks` devices and the given tenant names (empty for
    /// single-job runs).
    #[must_use]
    pub fn new(disks: usize, tenant_names: &[String]) -> Self {
        let mut registry = Registry::new();

        let requests: Arc<Family<Counter>> = Arc::new(Family::new(&["disk"]));
        let bytes: Arc<Family<Counter>> = Arc::new(Family::new(&["disk"]));
        let depth: Arc<Family<Gauge>> = Arc::new(Family::new(&["disk"]));
        let service: Arc<Family<Histogram>> = Arc::new(Family::new_with_constructor(
            &["disk"],
            || Histogram::new(&duration_buckets()),
        ));
        let wait: Arc<Family<Histogram>> = Arc::new(Family::new_with_constructor(
            &["disk"],
            || Histogram::new(&duration_buckets()),
        ));
        registry.register(
            "pm_disk_requests",
            "Completed read requests per disk.",
            Arc::clone(&requests),
        );
        registry.register(
            "pm_disk_read_bytes",
            "Payload bytes read per disk.",
            Arc::clone(&bytes),
        );
        registry.register(
            "pm_disk_queue_depth",
            "Outstanding requests per disk, sampled at queue transitions.",
            Arc::clone(&depth),
        );
        registry.register(
            "pm_disk_service_seconds",
            "Per-request service time (position + transfer) per disk.",
            Arc::clone(&service),
        );
        registry.register(
            "pm_disk_queue_wait_seconds",
            "Per-request wait before service began, per disk.",
            Arc::clone(&wait),
        );
        let submit_batch: Arc<Family<Histogram>> = Arc::new(Family::new_with_constructor(
            &["disk"],
            || Histogram::new(&batch_buckets()),
        ));
        registry.register(
            "pm_io_submit_batch_size",
            "Requests per submission batch handed to the disk's queue.",
            Arc::clone(&submit_batch),
        );
        let reap_batch = Arc::new(Histogram::new(&batch_buckets()));
        registry.register(
            "pm_io_reap_batch_size",
            "Completions returned per reap across all disks.",
            Arc::clone(&reap_batch),
        );
        let disk_cells = (0..disks)
            .map(|d| {
                let label = d.to_string();
                DiskCell {
                    requests: requests.get_or_create(&[&label]),
                    bytes: bytes.get_or_create(&[&label]),
                    depth: depth.get_or_create(&[&label]),
                    service: service.get_or_create(&[&label]),
                    wait: wait.get_or_create(&[&label]),
                    submit_batch: submit_batch.get_or_create(&[&label]),
                }
            })
            .collect();

        let grant: Arc<Family<Gauge>> = Arc::new(Family::new(&["tenant"]));
        let tblocks: Arc<Family<Counter>> = Arc::new(Family::new(&["tenant"]));
        let twait: Arc<Family<Histogram>> = Arc::new(Family::new_with_constructor(
            &["tenant"],
            || Histogram::new(&duration_buckets()),
        ));
        let slowdown: Arc<Family<Gauge>> = Arc::new(Family::new(&["tenant"]));
        let wfq_lag: Arc<Family<Gauge>> = Arc::new(Family::new(&["tenant"]));
        registry.register(
            "pm_tenant_cache_grant_blocks",
            "Cache blocks granted to the tenant at admission.",
            Arc::clone(&grant),
        );
        registry.register(
            "pm_tenant_blocks",
            "Blocks delivered to the tenant's merge.",
            Arc::clone(&tblocks),
        );
        registry.register(
            "pm_tenant_queue_wait_seconds",
            "Per-request wait behind other tenants' traffic.",
            Arc::clone(&twait),
        );
        registry.register(
            "pm_tenant_slowdown",
            "Shared-vs-isolated completion-time ratio.",
            Arc::clone(&slowdown),
        );
        registry.register(
            "pm_tenant_wfq_lag_ticks",
            "Fair-queueing virtual-time lag behind the disk clock.",
            Arc::clone(&wfq_lag),
        );
        let tenant_cells = tenant_names
            .iter()
            .map(|name| TenantCell {
                name: name.clone(),
                grant: grant.get_or_create(&[name]),
                blocks: tblocks.get_or_create(&[name]),
                wait: twait.get_or_create(&[name]),
                slowdown: slowdown.get_or_create(&[name]),
                wfq_lag: wfq_lag.get_or_create(&[name]),
            })
            .collect();

        let pass_blocks: Arc<Family<Counter>> = Arc::new(Family::new(&["pass"]));
        let pass_records: Arc<Family<Counter>> = Arc::new(Family::new(&["pass"]));
        registry.register(
            "pm_pass_blocks_read",
            "Blocks read per merge pass.",
            Arc::clone(&pass_blocks),
        );
        registry.register(
            "pm_pass_records_merged",
            "Records merged per merge pass.",
            Arc::clone(&pass_records),
        );

        let trial_count: Arc<Family<Counter>> = Arc::new(Family::new(&["strategy"]));
        let trial_blocks: Arc<Family<Counter>> = Arc::new(Family::new(&["strategy"]));
        let trial_demand: Arc<Family<Counter>> = Arc::new(Family::new(&["strategy"]));
        let trial_fallback: Arc<Family<Counter>> = Arc::new(Family::new(&["strategy"]));
        let trial_full: Arc<Family<Counter>> = Arc::new(Family::new(&["strategy"]));
        registry.register(
            "pm_sim_trials",
            "Completed simulation trials per strategy.",
            Arc::clone(&trial_count),
        );
        registry.register(
            "pm_sim_blocks_depleted",
            "Blocks consumed by simulated merges per strategy.",
            Arc::clone(&trial_blocks),
        );
        registry.register(
            "pm_sim_demand_fetches",
            "Demand fetches issued by simulated merges per strategy.",
            Arc::clone(&trial_demand),
        );
        registry.register(
            "pm_sim_demand_misses",
            "Prefetch fallbacks (demand misses) per strategy.",
            Arc::clone(&trial_fallback),
        );
        registry.register(
            "pm_sim_full_prefetches",
            "Full-depth prefetch batches per strategy.",
            Arc::clone(&trial_full),
        );

        StackMetrics {
            registry,
            disks: disk_cells,
            tenants: tenant_cells,
            reap_batch,
            pass_blocks,
            pass_records,
            trial_count,
            trial_blocks,
            trial_demand,
            trial_fallback,
            trial_full,
        }
    }

    /// The underlying registry, for exporters.
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Convenience: snapshot of every registered series.
    #[must_use]
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        self.registry.snapshot()
    }

    /// Number of disks bound at construction.
    #[must_use]
    pub fn disk_count(&self) -> usize {
        self.disks.len()
    }

    /// Completed requests on `disk` so far.
    #[must_use]
    pub fn disk_requests(&self, disk: usize) -> u64 {
        self.disks.get(disk).map_or(0, |c| c.requests.get())
    }

    /// Accumulated service seconds on `disk` — the numerator of a live
    /// utilization estimate.
    #[must_use]
    pub fn disk_busy_secs(&self, disk: usize) -> f64 {
        self.disks.get(disk).map_or(0.0, |c| c.service.sum())
    }

    /// Tenant names bound at construction.
    #[must_use]
    pub fn tenant_names(&self) -> Vec<&str> {
        self.tenants.iter().map(|t| t.name.as_str()).collect()
    }

    /// Blocks delivered to tenant `t` so far.
    #[must_use]
    pub fn tenant_blocks_done(&self, tenant: usize) -> u64 {
        self.tenants.get(tenant).map_or(0, |t| t.blocks.get())
    }
}

impl MetricsSink for StackMetrics {
    fn disk_io(&self, disk: usize, bytes: u64, queue_wait_secs: f64, service_secs: f64) {
        if let Some(c) = self.disks.get(disk) {
            c.requests.inc();
            c.bytes.inc_by(bytes);
            c.wait.observe(queue_wait_secs);
            c.service.observe(service_secs);
        }
    }

    fn disk_queue_depth(&self, disk: usize, depth: f64) {
        if let Some(c) = self.disks.get(disk) {
            c.depth.set(depth);
        }
    }

    fn io_submit_batch(&self, disk: usize, n: u64) {
        if let Some(c) = self.disks.get(disk) {
            c.submit_batch.observe(n as f64);
        }
    }

    fn io_reap_batch(&self, n: u64) {
        self.reap_batch.observe(n as f64);
    }

    fn tenant_grant(&self, tenant: usize, blocks: u64) {
        if let Some(t) = self.tenants.get(tenant) {
            t.grant.set(blocks as f64);
        }
    }

    fn tenant_blocks(&self, tenant: usize, blocks: u64) {
        if let Some(t) = self.tenants.get(tenant) {
            t.blocks.inc_by(blocks);
        }
    }

    fn tenant_wait(&self, tenant: usize, queue_wait_secs: f64) {
        if let Some(t) = self.tenants.get(tenant) {
            t.wait.observe(queue_wait_secs);
        }
    }

    fn tenant_slowdown(&self, tenant: usize, slowdown: f64) {
        if let Some(t) = self.tenants.get(tenant) {
            t.slowdown.set(slowdown);
        }
    }

    fn wfq_lag(&self, tenant: usize, lag_ticks: u64) {
        if let Some(t) = self.tenants.get(tenant) {
            t.wfq_lag.set(lag_ticks as f64);
        }
    }

    fn pass_done(&self, pass: u32, blocks_read: u64, records_merged: u64) {
        let label = pass.to_string();
        self.pass_blocks.get_or_create(&[&label]).inc_by(blocks_read);
        self.pass_records.get_or_create(&[&label]).inc_by(records_merged);
    }

    fn trial_done(
        &self,
        strategy: &str,
        blocks: u64,
        demand_ops: u64,
        fallback_ops: u64,
        full_prefetch_ops: u64,
    ) {
        self.trial_count.get_or_create(&[strategy]).inc();
        self.trial_blocks.get_or_create(&[strategy]).inc_by(blocks);
        self.trial_demand.get_or_create(&[strategy]).inc_by(demand_ops);
        self.trial_fallback.get_or_create(&[strategy]).inc_by(fallback_ops);
        self.trial_full.get_or_create(&[strategy]).inc_by(full_prefetch_ops);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_text;

    #[test]
    fn records_flow_into_the_right_families() {
        let m = StackMetrics::new(2, &["alice".to_string(), "bob".to_string()]);
        m.disk_io(0, 4096, 0.001, 0.002);
        m.disk_io(1, 4096, 0.0, 0.004);
        m.disk_queue_depth(1, 3.0);
        m.io_submit_batch(0, 4);
        m.io_reap_batch(2);
        m.tenant_grant(0, 128);
        m.tenant_blocks(1, 7);
        m.tenant_wait(0, 0.01);
        m.tenant_slowdown(1, 1.8);
        m.wfq_lag(0, 42);
        m.pass_done(1, 100, 4000);
        m.trial_done("inter", 1000, 3, 1, 250);
        assert_eq!(m.disk_requests(0), 1);
        assert!((m.disk_busy_secs(1) - 0.004).abs() < 1e-9);
        assert_eq!(m.tenant_blocks_done(1), 7);
        let text = encode_text(&m.snapshot());
        assert!(text.contains("pm_disk_requests_total{disk=\"0\"} 1\n"), "{text}");
        assert!(text.contains("pm_tenant_cache_grant_blocks{tenant=\"alice\"} 128\n"), "{text}");
        assert!(text.contains("pm_tenant_slowdown{tenant=\"bob\"} 1.8\n"), "{text}");
        assert!(text.contains("pm_pass_blocks_read_total{pass=\"1\"} 100\n"), "{text}");
        assert!(text.contains("pm_io_submit_batch_size_count{disk=\"0\"} 1\n"), "{text}");
        assert!(text.contains("pm_io_reap_batch_size_count 1\n"), "{text}");
        assert!(text.contains("pm_sim_trials_total{strategy=\"inter\"} 1\n"), "{text}");
    }

    #[test]
    fn out_of_range_indices_are_dropped() {
        let m = StackMetrics::new(1, &[]);
        m.disk_io(5, 1, 0.0, 0.0);
        m.tenant_grant(0, 10);
        assert_eq!(m.disk_requests(5), 0);
        assert_eq!(m.tenant_blocks_done(0), 0);
    }
}
