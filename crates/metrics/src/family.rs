//! Label families: one metric series per label-value combination.
//!
//! Mirrors `prometheus_client`'s `Family` in miniature. A family owns its
//! label *names* (fixed at construction) and lazily materializes one
//! metric per label-*value* tuple. Lookup takes a `Mutex` and a linear
//! scan, which is why hot paths bind their `Arc` handle once at setup via
//! [`Family::get_or_create`] and then touch only the atomic metric —
//! the family is a registration-time directory, not a per-event path.
//!
//! Cardinality is meant to stay small and static: disks, tenants, passes,
//! strategies. Nothing prevents unbounded label values, but the exposition
//! cost and the linear scan both assume dozens of cells, not thousands.

use std::sync::{Arc, Mutex};

/// A set of metrics of one type, distinguished by label values.
pub struct Family<M> {
    label_names: Vec<&'static str>,
    make: Box<dyn Fn() -> M + Send + Sync>,
    cells: Mutex<Vec<(Vec<String>, Arc<M>)>>,
}

impl<M> std::fmt::Debug for Family<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Family")
            .field("label_names", &self.label_names)
            .field("cells", &self.cells.lock().expect("family cells").len())
            .finish_non_exhaustive()
    }
}

impl<M: Default + 'static> Family<M> {
    /// A family whose members are `M::default()` (counters, gauges).
    #[must_use]
    pub fn new(label_names: &[&'static str]) -> Self {
        Family::new_with_constructor(label_names, M::default)
    }
}

impl<M> Family<M> {
    /// A family whose members are built by `make` — the histogram path,
    /// where every member must share one bucket layout.
    #[must_use]
    pub fn new_with_constructor(
        label_names: &[&'static str],
        make: impl Fn() -> M + Send + Sync + 'static,
    ) -> Self {
        Family {
            label_names: label_names.to_vec(),
            make: Box::new(make),
            cells: Mutex::new(Vec::new()),
        }
    }

    /// The label names, in exposition order.
    #[must_use]
    pub fn label_names(&self) -> &[&'static str] {
        &self.label_names
    }

    /// The member for `label_values`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `label_values` does not match the family's label-name
    /// count — that is a wiring bug, not a runtime condition.
    #[must_use]
    pub fn get_or_create(&self, label_values: &[&str]) -> Arc<M> {
        assert_eq!(
            label_values.len(),
            self.label_names.len(),
            "label value count must match label names"
        );
        let mut cells = self.cells.lock().expect("family cells");
        if let Some((_, m)) = cells
            .iter()
            .find(|(vals, _)| vals.iter().map(String::as_str).eq(label_values.iter().copied()))
        {
            return Arc::clone(m);
        }
        let m = Arc::new((self.make)());
        cells.push((
            label_values.iter().map(|v| (*v).to_string()).collect(),
            Arc::clone(&m),
        ));
        m
    }

    /// Every `(label_values, metric)` cell, sorted by label values with a
    /// numeric-aware comparison (`"2"` before `"10"`) so exposition order
    /// is deterministic regardless of creation order.
    #[must_use]
    pub fn cells(&self) -> Vec<(Vec<String>, Arc<M>)> {
        let mut out: Vec<_> = self
            .cells
            .lock()
            .expect("family cells")
            .iter()
            .map(|(vals, m)| (vals.clone(), Arc::clone(m)))
            .collect();
        out.sort_by(|(a, _), (b, _)| cmp_label_tuples(a, b));
        out
    }
}

/// Compares label-value tuples element-wise, numerically when both sides
/// parse as unsigned integers.
fn cmp_label_tuples(a: &[String], b: &[String]) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        let ord = match (x.parse::<u64>(), y.parse::<u64>()) {
            (Ok(nx), Ok(ny)) => nx.cmp(&ny),
            _ => x.cmp(y),
        };
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    a.len().cmp(&b.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Counter;

    #[test]
    fn same_labels_share_a_cell() {
        let f: Family<Counter> = Family::new(&["disk"]);
        f.get_or_create(&["0"]).inc();
        f.get_or_create(&["0"]).inc();
        f.get_or_create(&["1"]).inc();
        let cells = f.cells();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].1.get(), 2);
        assert_eq!(cells[1].1.get(), 1);
    }

    #[test]
    fn cells_sort_numerically_then_lexically() {
        let f: Family<Counter> = Family::new(&["disk"]);
        for d in ["10", "2", "0"] {
            let _ = f.get_or_create(&[d]);
        }
        let order: Vec<String> = f.cells().into_iter().map(|(v, _)| v[0].clone()).collect();
        assert_eq!(order, vec!["0", "2", "10"]);
        let g: Family<Counter> = Family::new(&["tenant"]);
        for t in ["t1", "a", "t10", "t2"] {
            let _ = g.get_or_create(&[t]);
        }
        let order: Vec<String> = g.cells().into_iter().map(|(v, _)| v[0].clone()).collect();
        assert_eq!(order, vec!["a", "t1", "t10", "t2"]);
    }

    #[test]
    #[should_panic(expected = "label value count")]
    fn wrong_arity_rejected() {
        let f: Family<Counter> = Family::new(&["disk", "tenant"]);
        let _ = f.get_or_create(&["0"]);
    }
}
