//! The registry: names, help text, and snapshotting.
//!
//! Components create metrics, register them under a name + help string,
//! and keep their own `Arc` handles for recording. Exporters never touch
//! live atomics directly; they take a [`Registry::snapshot`] — a plain
//! data tree — and render it (Prometheus text here, JSON in `pm-obs`).
//! Snapshot order is registration order for metrics and numeric-aware
//! label order within a family, so rendering is deterministic.

use std::sync::Arc;

use crate::family::Family;
use crate::metric::{Counter, Gauge, Histogram, HistogramSnapshot};

/// What kind of series a registry entry holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter (`_total` suffix in exposition).
    Counter,
    /// Free-moving gauge.
    Gauge,
    /// Fixed-bucket histogram.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Anything the registry can hold: a bare metric or a label family.
#[derive(Debug)]
pub enum Collector {
    /// A single unlabelled counter.
    Counter(Arc<Counter>),
    /// A single unlabelled gauge.
    Gauge(Arc<Gauge>),
    /// A single unlabelled histogram.
    Histogram(Arc<Histogram>),
    /// A labelled counter family.
    CounterFamily(Arc<Family<Counter>>),
    /// A labelled gauge family.
    GaugeFamily(Arc<Family<Gauge>>),
    /// A labelled histogram family.
    HistogramFamily(Arc<Family<Histogram>>),
}

impl Collector {
    fn kind(&self) -> MetricKind {
        match self {
            Collector::Counter(_) | Collector::CounterFamily(_) => MetricKind::Counter,
            Collector::Gauge(_) | Collector::GaugeFamily(_) => MetricKind::Gauge,
            Collector::Histogram(_) | Collector::HistogramFamily(_) => MetricKind::Histogram,
        }
    }
}

/// Conversion into a [`Collector`], so [`Registry::register`] accepts any
/// metric or family handle directly (mirroring `prometheus_client`).
pub trait IntoCollector {
    /// Wraps `self` in the matching [`Collector`] variant.
    fn into_collector(self) -> Collector;
}

impl IntoCollector for Arc<Counter> {
    fn into_collector(self) -> Collector {
        Collector::Counter(self)
    }
}

impl IntoCollector for Arc<Gauge> {
    fn into_collector(self) -> Collector {
        Collector::Gauge(self)
    }
}

impl IntoCollector for Arc<Histogram> {
    fn into_collector(self) -> Collector {
        Collector::Histogram(self)
    }
}

impl IntoCollector for Arc<Family<Counter>> {
    fn into_collector(self) -> Collector {
        Collector::CounterFamily(self)
    }
}

impl IntoCollector for Arc<Family<Gauge>> {
    fn into_collector(self) -> Collector {
        Collector::GaugeFamily(self)
    }
}

impl IntoCollector for Arc<Family<Histogram>> {
    fn into_collector(self) -> Collector {
        Collector::HistogramFamily(self)
    }
}

/// One registered entry.
#[derive(Debug)]
struct Entry {
    name: String,
    help: String,
    collector: Collector,
}

/// A set of named metrics, snapshot in registration order.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Vec<Entry>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers `metric` under `name` with `help` text.
    ///
    /// Counter names should *not* carry the `_total` suffix; exposition
    /// appends it, as `prometheus_client` does.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered — duplicate names would
    /// produce an invalid exposition.
    pub fn register(&mut self, name: &str, help: &str, metric: impl IntoCollector) {
        assert!(
            self.entries.iter().all(|e| e.name != name),
            "metric '{name}' registered twice"
        );
        self.entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            collector: metric.into_collector(),
        });
    }

    /// A point-in-time copy of every registered series.
    #[must_use]
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        self.entries
            .iter()
            .map(|e| MetricSnapshot {
                name: e.name.clone(),
                help: e.help.clone(),
                kind: e.collector.kind(),
                samples: collect_samples(&e.collector),
            })
            .collect()
    }
}

fn collect_samples(c: &Collector) -> Vec<Sample> {
    match c {
        Collector::Counter(m) => vec![Sample {
            labels: Vec::new(),
            value: SampleValue::Counter(m.get()),
        }],
        Collector::Gauge(m) => vec![Sample {
            labels: Vec::new(),
            value: SampleValue::Gauge(m.get()),
        }],
        Collector::Histogram(m) => vec![Sample {
            labels: Vec::new(),
            value: SampleValue::Histogram(m.snapshot()),
        }],
        Collector::CounterFamily(f) => family_samples(f, |m| SampleValue::Counter(m.get())),
        Collector::GaugeFamily(f) => family_samples(f, |m| SampleValue::Gauge(m.get())),
        Collector::HistogramFamily(f) => {
            family_samples(f, |m| SampleValue::Histogram(m.snapshot()))
        }
    }
}

fn family_samples<M>(f: &Family<M>, read: impl Fn(&M) -> SampleValue) -> Vec<Sample> {
    let names = f.label_names().to_vec();
    f.cells()
        .into_iter()
        .map(|(values, m)| Sample {
            labels: names
                .iter()
                .zip(values)
                .map(|(n, v)| ((*n).to_string(), v))
                .collect(),
            value: read(&m),
        })
        .collect()
}

/// A snapshot of one registered metric (possibly many labelled samples).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Registered name (without any counter `_total` suffix).
    pub name: String,
    /// Help text.
    pub help: String,
    /// Series type.
    pub kind: MetricKind,
    /// One sample per label combination; empty labels for bare metrics.
    pub samples: Vec<Sample>,
}

/// One series sample within a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// `(name, value)` label pairs in family label order.
    pub labels: Vec<(String, String)>,
    /// The sampled value.
    pub value: SampleValue,
}

/// The typed value of one sample.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// Counter total.
    Counter(u64),
    /// Gauge level.
    Gauge(f64),
    /// Histogram state (cumulative buckets, count, sum).
    Histogram(HistogramSnapshot),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_preserves_registration_order() {
        let mut r = Registry::new();
        let c = Arc::new(Counter::new());
        let g = Arc::new(Gauge::new());
        r.register("zzz", "last letter first", Arc::clone(&c));
        r.register("aaa", "first letter last", Arc::clone(&g));
        c.inc_by(7);
        g.set(-2.0);
        let snap = r.snapshot();
        assert_eq!(snap[0].name, "zzz");
        assert_eq!(snap[0].samples[0].value, SampleValue::Counter(7));
        assert_eq!(snap[1].name, "aaa");
        assert_eq!(snap[1].samples[0].value, SampleValue::Gauge(-2.0));
    }

    #[test]
    fn family_snapshot_carries_labels() {
        let mut r = Registry::new();
        let f: Arc<Family<Counter>> = Arc::new(Family::new(&["disk"]));
        r.register("reads", "reads per disk", Arc::clone(&f));
        f.get_or_create(&["3"]).inc();
        f.get_or_create(&["1"]).inc_by(2);
        let snap = r.snapshot();
        assert_eq!(snap[0].samples.len(), 2);
        assert_eq!(snap[0].samples[0].labels, vec![("disk".to_string(), "1".to_string())]);
        assert_eq!(snap[0].samples[0].value, SampleValue::Counter(2));
        assert_eq!(snap[0].samples[1].labels, vec![("disk".to_string(), "3".to_string())]);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_names_rejected() {
        let mut r = Registry::new();
        r.register("x", "one", Arc::new(Counter::new()));
        r.register("x", "two", Arc::new(Counter::new()));
    }
}
