//! The three metric primitives: counter, gauge, histogram.
//!
//! All hot-path operations are single atomic instructions (or a short CAS
//! loop for float gauge arithmetic) on pre-bound handles — no locks, no
//! allocation, no formatting. Aggregation is commutative by construction:
//! counters and histogram bucket counts are `u64` additions and the
//! histogram sum is accumulated in fixed-point nanounits, so totals are
//! identical regardless of the interleaving of recording threads. That is
//! what makes exposition output byte-identical across `--jobs` for
//! workloads whose *set* of observations is jobs-invariant.

use std::sync::atomic::{AtomicU64, Ordering};

/// Fixed-point scale for histogram sums: 1e9 units per 1.0 observed.
///
/// Nine fractional digits cover nanosecond resolution for the
/// seconds-valued durations this workspace records while leaving headroom
/// up to ~18.4e9 seconds of accumulated sum before saturation.
const SUM_SCALE: f64 = 1e9;

/// A monotonically increasing `u64` counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.inc_by(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn inc_by(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A float-valued gauge that can move in either direction.
///
/// The value is stored as `f64` bits in an `AtomicU64`; `set` is a single
/// store and `add`/`inc`/`dec` are short CAS loops. Small-integer
/// arithmetic (queue depths counted by ±1) is exact in `f64`, so integer
/// gauges behave like integers.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Replaces the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (negative to subtract).
    #[inline]
    pub fn add(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1.0);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1.0);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram of non-negative `f64` observations.
///
/// Bucket upper bounds are chosen at construction and never change; the
/// final `+Inf` bucket is implicit. Counts are kept per bucket
/// (non-cumulative) and the sum in saturating fixed-point nanounits, so
/// every `observe` is two relaxed atomic adds and concurrent recording
/// commutes exactly.
#[derive(Debug)]
pub struct Histogram {
    /// Finite upper bounds, strictly ascending.
    bounds: Vec<f64>,
    /// One slot per finite bound plus the trailing `+Inf` bucket.
    counts: Vec<AtomicU64>,
    /// Sum of observations in fixed-point `SUM_SCALE` units.
    sum_fixed: AtomicU64,
}

impl Histogram {
    /// A histogram with the given finite bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty, non-finite, or not strictly ascending.
    #[must_use]
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        for pair in bounds.windows(2) {
            assert!(pair[0] < pair[1], "bucket bounds must be strictly ascending");
        }
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "bucket bounds must be finite (+Inf is implicit)"
        );
        let mut counts = Vec::with_capacity(bounds.len() + 1);
        counts.resize_with(bounds.len() + 1, AtomicU64::default);
        Histogram {
            bounds: bounds.to_vec(),
            counts,
            sum_fixed: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    ///
    /// Negative and NaN observations clamp into the first bucket with a
    /// zero sum contribution — callers record durations, which are never
    /// negative on a sane clock, and a poisoned sample must not poison the
    /// whole series.
    #[inline]
    pub fn observe(&self, v: f64) {
        let v = if v.is_finite() && v > 0.0 { v } else { 0.0 };
        let mut idx = self.bounds.len();
        for (i, b) in self.bounds.iter().enumerate() {
            if v <= *b {
                idx = i;
                break;
            }
        }
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        let fixed = (v * SUM_SCALE).round() as u64;
        // Saturate instead of wrapping: an overflowing sum freezes at max
        // rather than corrupting the series.
        let mut cur = self.sum_fixed.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(fixed);
            match self.sum_fixed.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The finite bucket upper bounds.
    #[must_use]
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Cumulative counts per finite bound, the `+Inf` count, total count,
    /// and the observation sum.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut cumulative = Vec::with_capacity(self.bounds.len());
        let mut running = 0u64;
        for (i, b) in self.bounds.iter().enumerate() {
            running += self.counts[i].load(Ordering::Relaxed);
            cumulative.push((*b, running));
        }
        let inf = running + self.counts[self.bounds.len()].load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets: cumulative,
            count: inf,
            sum: self.sum_fixed.load(Ordering::Relaxed) as f64 / SUM_SCALE,
        }
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of observations (fixed-point accumulated, so thread-order
    /// independent).
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum_fixed.load(Ordering::Relaxed) as f64 / SUM_SCALE
    }
}

/// A point-in-time view of one histogram, cumulative per Prometheus
/// convention.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// `(upper_bound, cumulative_count)` per finite bound, ascending.
    pub buckets: Vec<(f64, u64)>,
    /// Total observations (the implicit `+Inf` cumulative count).
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
}

/// `count` exponentially spaced bucket bounds: `start`, `start*factor`,
/// `start*factor^2`, …
///
/// Mirrors `prometheus_client`'s helper of the same name.
///
/// # Panics
///
/// Panics if `start <= 0`, `factor <= 1`, or `count == 0`.
#[must_use]
pub fn exponential_buckets(start: f64, factor: f64, count: usize) -> Vec<f64> {
    assert!(start > 0.0, "start must be positive");
    assert!(factor > 1.0, "factor must exceed 1");
    assert!(count > 0, "need at least one bucket");
    let mut bounds = Vec::with_capacity(count);
    let mut b = start;
    for _ in 0..count {
        bounds.push(b);
        b *= factor;
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.inc_by(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(5.0);
        g.inc();
        g.dec();
        g.add(-2.5);
        assert!((g.get() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_places_observations() {
        let h = Histogram::new(&[0.1, 1.0, 10.0]);
        h.observe(0.05); // bucket 0
        h.observe(0.1); // le is inclusive: bucket 0
        h.observe(0.5); // bucket 1
        h.observe(100.0); // +Inf
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![(0.1, 2), (1.0, 3), (10.0, 3)]);
        assert_eq!(s.count, 4);
        assert!((s.sum - 100.65).abs() < 1e-9);
    }

    #[test]
    fn histogram_clamps_garbage() {
        let h = Histogram::new(&[1.0]);
        h.observe(-3.0);
        h.observe(f64::NAN);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.buckets[0].1, 2);
        assert_eq!(s.sum, 0.0);
    }

    #[test]
    fn exponential_bounds_multiply() {
        assert_eq!(exponential_buckets(1.0, 2.0, 4), vec![1.0, 2.0, 4.0, 8.0]);
    }

    #[test]
    fn exponential_edges_are_inclusive() {
        // An observation exactly on a bound lands in that bound's bucket
        // (Prometheus `le` semantics); one ulp above spills into the next.
        let bounds = exponential_buckets(0.01, 4.0, 5);
        let h = Histogram::new(&bounds);
        for &b in &bounds {
            h.observe(b);
            h.observe(b * (1.0 + 1e-12));
        }
        let s = h.snapshot();
        // Bucket i cumulatively holds its own edge hit plus every earlier
        // pair: on-edge i, plus both observations of each bound below it.
        for (i, &(bound, cumulative)) in s.buckets.iter().enumerate() {
            assert_eq!(bound, bounds[i]);
            assert_eq!(cumulative, 2 * i as u64 + 1, "bound {bound}");
        }
        // The last bound's just-above observation is only in +Inf.
        assert_eq!(s.count, 2 * bounds.len() as u64);
        assert_eq!(s.buckets.last().unwrap().1, s.count - 1);
    }

    #[test]
    fn cumulative_counts_are_monotone_and_end_at_count() {
        let h = Histogram::new(&exponential_buckets(1e-5, 4.0, 10));
        for i in 0..500 {
            h.observe(f64::from(i) * 1e-4);
        }
        h.observe(1e9); // far past the last bound: +Inf only
        let s = h.snapshot();
        for pair in s.buckets.windows(2) {
            assert!(pair[0].1 <= pair[1].1, "cumulative counts must not drop");
        }
        assert_eq!(s.count, 501);
        assert_eq!(s.buckets.last().unwrap().1, 500);
        assert_eq!(h.count(), s.count);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unordered_bounds_rejected() {
        let _ = Histogram::new(&[1.0, 1.0]);
    }

    #[test]
    fn concurrent_observations_commute() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new(&exponential_buckets(0.001, 10.0, 4)));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        h.observe(f64::from(i % 17) * 0.01 + f64::from(t) * 0.001);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
    }
}
