//! Where instrumented components send their measurements.
//!
//! Mirrors `pm_trace::TraceSink`: components are generic over an
//! `M: MetricsSink` and guard every recording site with `if M::ENABLED`,
//! so a [`NullMetrics`] caller monomorphizes to code with no metrics
//! residue — no argument evaluation, no call, no branch. The perf-smoke
//! alloc gate and the bit-identical determinism contract both rest on
//! that: a disabled run *is* the uninstrumented run.
//!
//! Unlike `TraceSink`, recording takes `&self` — measurements arrive from
//! worker threads, so implementations aggregate through atomics (see
//! [`crate::StackMetrics`]). Implementations must treat measurements as
//! read-only observations; a sink that influenced scheduling or merge
//! decisions would break the guarantee that metered and unmetered runs
//! are bit-identical.

/// A consumer of stack measurements.
///
/// Every method has an empty default body, so a sink overrides only the
/// hooks it aggregates. Tenants and disks are addressed by dense index
/// (the order jobs/devices were declared in), which lets implementations
/// pre-bind label handles and keep the hot path lock-free.
pub trait MetricsSink: Send + Sync {
    /// Whether this sink records anything. Recording sites skip argument
    /// evaluation entirely when this is `false`.
    const ENABLED: bool = true;

    /// One completed read on `disk`: payload size plus measured
    /// queue-wait and service durations in seconds.
    fn disk_io(&self, disk: usize, bytes: u64, queue_wait_secs: f64, service_secs: f64) {
        let _ = (disk, bytes, queue_wait_secs, service_secs);
    }

    /// Outstanding-request depth on `disk`, sampled at a queue
    /// transition.
    fn disk_queue_depth(&self, disk: usize, depth: f64) {
        let _ = (disk, depth);
    }

    /// One submission batch of `n` requests handed to `disk`'s queue.
    fn io_submit_batch(&self, disk: usize, n: u64) {
        let _ = (disk, n);
    }

    /// One completion reap returned `n` requests across all disks.
    fn io_reap_batch(&self, n: u64) {
        let _ = n;
    }

    /// Cache blocks granted to `tenant` at admission.
    fn tenant_grant(&self, tenant: usize, blocks: u64) {
        let _ = (tenant, blocks);
    }

    /// `blocks` more blocks delivered to `tenant`'s merge.
    fn tenant_blocks(&self, tenant: usize, blocks: u64) {
        let _ = (tenant, blocks);
    }

    /// One completed request for `tenant` waited `queue_wait_secs` behind
    /// other tenants' traffic.
    fn tenant_wait(&self, tenant: usize, queue_wait_secs: f64) {
        let _ = (tenant, queue_wait_secs);
    }

    /// Final (or running) shared-vs-isolated slowdown for `tenant`.
    fn tenant_slowdown(&self, tenant: usize, slowdown: f64) {
        let _ = (tenant, slowdown);
    }

    /// Fair-queueing virtual-time lag sample for `tenant`, in scheduler
    /// ticks: how far the flow's last finish tag trails the disk's
    /// virtual clock (0 when the flow is keeping pace).
    fn wfq_lag(&self, tenant: usize, lag_ticks: u64) {
        let _ = (tenant, lag_ticks);
    }

    /// One merge pass completed.
    fn pass_done(&self, pass: u32, blocks_read: u64, records_merged: u64) {
        let _ = (pass, blocks_read, records_merged);
    }

    /// One simulation trial completed under `strategy`.
    fn trial_done(
        &self,
        strategy: &str,
        blocks: u64,
        demand_ops: u64,
        fallback_ops: u64,
        full_prefetch_ops: u64,
    ) {
        let _ = (strategy, blocks, demand_ops, fallback_ops, full_prefetch_ops);
    }
}

/// The do-nothing default sink; metrics compiled out.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullMetrics;

impl MetricsSink for NullMetrics {
    const ENABLED: bool = false;
}

impl<M: MetricsSink> MetricsSink for &M {
    const ENABLED: bool = M::ENABLED;

    #[inline]
    fn disk_io(&self, disk: usize, bytes: u64, queue_wait_secs: f64, service_secs: f64) {
        (**self).disk_io(disk, bytes, queue_wait_secs, service_secs);
    }

    #[inline]
    fn disk_queue_depth(&self, disk: usize, depth: f64) {
        (**self).disk_queue_depth(disk, depth);
    }

    #[inline]
    fn io_submit_batch(&self, disk: usize, n: u64) {
        (**self).io_submit_batch(disk, n);
    }

    #[inline]
    fn io_reap_batch(&self, n: u64) {
        (**self).io_reap_batch(n);
    }

    #[inline]
    fn tenant_grant(&self, tenant: usize, blocks: u64) {
        (**self).tenant_grant(tenant, blocks);
    }

    #[inline]
    fn tenant_blocks(&self, tenant: usize, blocks: u64) {
        (**self).tenant_blocks(tenant, blocks);
    }

    #[inline]
    fn tenant_wait(&self, tenant: usize, queue_wait_secs: f64) {
        (**self).tenant_wait(tenant, queue_wait_secs);
    }

    #[inline]
    fn tenant_slowdown(&self, tenant: usize, slowdown: f64) {
        (**self).tenant_slowdown(tenant, slowdown);
    }

    #[inline]
    fn wfq_lag(&self, tenant: usize, lag_ticks: u64) {
        (**self).wfq_lag(tenant, lag_ticks);
    }

    #[inline]
    fn pass_done(&self, pass: u32, blocks_read: u64, records_merged: u64) {
        (**self).pass_done(pass, blocks_read, records_merged);
    }

    #[inline]
    fn trial_done(
        &self,
        strategy: &str,
        blocks: u64,
        demand_ops: u64,
        fallback_ops: u64,
        full_prefetch_ops: u64,
    ) {
        (**self).trial_done(strategy, blocks, demand_ops, fallback_ops, full_prefetch_ops);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_accepts_everything() {
        let m = NullMetrics;
        m.disk_io(0, 4096, 0.001, 0.002);
        m.disk_queue_depth(0, 3.0);
        m.io_submit_batch(0, 8);
        m.io_reap_batch(3);
        m.tenant_grant(0, 100);
        m.tenant_blocks(0, 1);
        m.tenant_wait(0, 0.01);
        m.tenant_slowdown(0, 1.5);
        m.wfq_lag(0, 42);
        m.pass_done(1, 10, 400);
        m.trial_done("inter", 1000, 3, 1, 250);
    }

    // Compile-time checks: the enable flag must propagate through the
    // reference adapter so guarded recording sites vanish.
    const _: () = {
        assert!(!NullMetrics::ENABLED);
        assert!(!<&NullMetrics as MetricsSink>::ENABLED);
    };
}
