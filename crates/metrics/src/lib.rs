//! Hand-rolled metrics registry for the prefetchmerge stack.
//!
//! The build environment has no registry access, so this crate mirrors
//! the API shape of `prometheus_client` in miniature instead of depending
//! on it: [`Counter`] / [`Gauge`] / fixed-bucket [`Histogram`] primitives,
//! label [`Family`]s keyed by the stack's small static label sets (disk,
//! tenant, pass, strategy), a [`Registry`] that names them, and a
//! Prometheus text encoder ([`encode_text`]) producing standard
//! `# HELP`/`# TYPE` exposition. The JSON exporter lives in `pm-obs`,
//! which owns the workspace's JSON layer.
//!
//! Two properties shape every design choice:
//!
//! * **Zero cost when disabled.** Instrumented components are generic
//!   over a [`MetricsSink`] and guard recording with `if M::ENABLED`;
//!   the [`NullMetrics`] sink has `ENABLED = false`, so disabled builds
//!   monomorphize to the uninstrumented hot path — the perf-smoke
//!   counting-allocator gate (0.0000 allocs/block) and the bit-identical
//!   determinism contract keep holding with the instrumentation in place.
//! * **Deterministic aggregation and rendering.** Hot-path recording is
//!   relaxed atomic addition on handles bound once at setup ([`Family`]
//!   lookup is a setup-time directory, not a per-event path), histogram
//!   sums accumulate in fixed-point nanounits so addition commutes
//!   exactly, and exposition orders metrics by registration and samples
//!   by numeric-aware label order — a run whose *set* of observations is
//!   jobs-invariant renders byte-identical text at any `--jobs`.
//!
//! [`StackMetrics`] bundles the concrete families the workspace records
//! and implements [`MetricsSink`] over them; `pmerge` builds one per
//! metered run and exports it via `--metrics-out`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod encode;
mod family;
mod metric;
mod registry;
mod sink;
mod stack;

pub use encode::encode_text;
pub use family::Family;
pub use metric::{exponential_buckets, Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{Collector, IntoCollector, MetricKind, MetricSnapshot, Registry, Sample, SampleValue};
pub use sink::{MetricsSink, NullMetrics};
pub use stack::{duration_buckets, StackMetrics};
