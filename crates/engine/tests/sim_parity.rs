//! Sim-vs-engine cross-validation.
//!
//! The engine executes the simulator's decision procedure; replaying an
//! engine run's depletion sequence through the discrete-event simulator
//! ([`MergeEngine::predict`]) must therefore re-derive the exact per-disk
//! block-request sequences. With the latency-injected backend, the
//! engine's modeled per-request service breakdowns come from an
//! identically-seeded copy of the simulator's disk array, so per-disk
//! busy time is bit-identical too — and scaled wall-clock time lands
//! near the simulator's predicted total.

mod common;

use pm_core::{
    AdmissionPolicy, MergeConfig, PrefetchChoice, QueueDiscipline, ScenarioBuilder,
};
use pm_engine::{disk_seed_for, ThreadedQueue};

use common::{engine_for, form_runs, run_memory};

fn parity_scenarios() -> Vec<(&'static str, MergeConfig)> {
    vec![
        (
            "no-prefetch",
            ScenarioBuilder::new(8, 2).cache_blocks(16).seed(31).build().unwrap(),
        ),
        (
            "intra",
            ScenarioBuilder::new(8, 2).intra(4).seed(32).build().unwrap(),
        ),
        (
            "inter-random",
            ScenarioBuilder::new(8, 3).inter(4).seed(33).build().unwrap(),
        ),
        (
            "inter-greedy",
            ScenarioBuilder::new(8, 3)
                .inter(4)
                .admission(AdmissionPolicy::Greedy)
                .prefetch_choice(PrefetchChoice::LeastHeld)
                .seed(34)
                .build()
                .unwrap(),
        ),
        (
            "adaptive",
            ScenarioBuilder::new(8, 2)
                .adaptive(1, 8)
                .cache_blocks(96)
                .seed(35)
                .build()
                .unwrap(),
        ),
    ]
}

#[test]
fn simulator_rederives_engine_request_sequences() {
    let runs = form_runs(4000, 500, 17);
    for (name, cfg) in parity_scenarios() {
        let engine = engine_for(cfg, &runs, 0);
        let outcome = run_memory(&engine, &runs, cfg.disks as usize);
        let prediction = engine.predict(&outcome.depletion).expect("predict");
        assert_eq!(
            outcome.requests, prediction.requests,
            "{name}: engine and simulator disagree on the request sequence"
        );
        let (e, s) = (&outcome.report, &prediction.report);
        assert_eq!(e.blocks_merged, s.blocks_merged, "{name}");
        assert_eq!(e.demand_ops, s.demand_ops, "{name}");
        assert_eq!(e.fallback_ops, s.fallback_ops, "{name}");
        assert_eq!(e.full_prefetch_ops, s.full_prefetch_ops, "{name}");
        let total: u64 = e.per_disk_requests.iter().sum();
        assert_eq!(total, s.disk_requests, "{name}");
    }
}

#[test]
fn latency_backend_matches_modeled_service_exactly() {
    // Deterministic half of the acceptance check: per-disk service
    // counts and modeled busy time are bit-identical to the simulator's
    // prediction (same request sequences into an identically-seeded
    // per-disk model, independent of host timing).
    let runs = form_runs(2000, 250, 19);
    for (name, cfg) in parity_scenarios() {
        let engine = engine_for(cfg, &runs, 0);
        let mut exec = *engine.exec_config();
        // Replay the model at 2000x so the whole matrix stays fast; the
        // breakdowns recorded are unscaled model durations.
        exec.time_scale = 5e-4;
        let engine = pm_engine::MergeEngine::new(
            exec,
            runs.iter().map(Vec::len).collect(),
        )
        .unwrap();
        let disks = cfg.disks as usize;
        let mut queue = ThreadedQueue::latency(
            disks,
            engine.block_bytes(),
            cfg.disk_spec,
            QueueDiscipline::Fifo,
            disk_seed_for(&cfg),
            engine.queue_options(),
        );
        engine.load(&mut queue, &runs).expect("load");
        let outcome = engine.execute(Box::new(queue)).expect("execute");
        let prediction = engine.predict(&outcome.depletion).expect("predict");

        assert_eq!(outcome.requests, prediction.requests, "{name}");
        let per_disk_counts: Vec<u64> = outcome.requests.iter().map(|r| r.len() as u64).collect();
        assert_eq!(outcome.report.per_disk_requests, per_disk_counts, "{name}");
        assert_eq!(
            outcome.report.per_disk_modeled_busy, prediction.report.per_disk_busy,
            "{name}: modeled service time diverged from the simulator"
        );
        let seq: u64 = outcome.report.per_disk_sequential.iter().sum();
        assert_eq!(seq, prediction.report.sequential_requests, "{name}");
    }
}

#[test]
#[ignore = "wall-clock timing: run explicitly (CI engine-smoke runs it with --ignored)"]
fn latency_backend_wall_clock_tracks_prediction() {
    // Timing half of the acceptance check: the engine's measured wall
    // clock, unscaled, lands near the simulator's predicted total. The
    // deadline-anchored sleeps keep per-request jitter from
    // accumulating, but a loaded host still adds noise — hence the
    // loose band and the #[ignore] gate.
    let runs = form_runs(2000, 250, 23);
    let cfg = ScenarioBuilder::new(8, 2).inter(4).seed(41).build().unwrap();
    let engine = engine_for(cfg, &runs, 0);
    let mut exec = *engine.exec_config();
    exec.time_scale = 0.25;
    let engine = pm_engine::MergeEngine::new(exec, runs.iter().map(Vec::len).collect()).unwrap();
    let mut queue = ThreadedQueue::latency(
        2,
        engine.block_bytes(),
        cfg.disk_spec,
        QueueDiscipline::Fifo,
        disk_seed_for(&cfg),
        engine.queue_options(),
    );
    engine.load(&mut queue, &runs).expect("load");
    let outcome = engine.execute(Box::new(queue)).expect("execute");
    let prediction = engine.predict(&outcome.depletion).expect("predict");
    let measured = outcome.report.wall.as_secs_f64() / exec.time_scale;
    let predicted = prediction.report.total.as_secs_f64();
    let ratio = measured / predicted;
    assert!(
        (0.8..=1.3).contains(&ratio),
        "scaled wall {measured:.2}s vs predicted {predicted:.2}s (ratio {ratio:.3})"
    );
}
