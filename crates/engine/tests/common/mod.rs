//! Shared fixtures for the engine integration tests.

// Each test binary compiles this module separately and uses a subset.
#![allow(dead_code)]

use std::path::PathBuf;

use pm_core::MergeConfig;
use pm_engine::{ExecConfig, ExecOutcome, MergeEngine, ThreadedQueue};
use pm_extsort::{generate, run_formation, Record};

/// Records per on-device block the tests use throughout.
pub const RPB: u32 = 20;

/// Records per block for `O_DIRECT` backends (32 × 16 B = 512 B, the
/// direct-I/O alignment unit).
pub const RPB_ALIGNED: u32 = 32;

/// Generates `total` uniform records and forms sorted runs of up to
/// `memory` records each (the pm-extsort run-formation path the real
/// sort uses).
pub fn form_runs(total: usize, memory: usize, seed: u64) -> Vec<Vec<Record>> {
    let input = generate::uniform(total, seed);
    run_formation::load_sort(&input, memory)
}

/// The expected merged output: every input record in key order.
pub fn reference(runs: &[Vec<Record>]) -> Vec<Record> {
    let mut all: Vec<Record> = runs.iter().flatten().copied().collect();
    all.sort_by_key(|r| (r.key, r.rid));
    all
}

/// Plans an engine over `runs` for `cfg` with the test block factor and
/// a negotiated queue depth.
pub fn engine_for(cfg: MergeConfig, runs: &[Vec<Record>], jobs: usize) -> MergeEngine {
    engine_custom(cfg, runs, jobs, 0, RPB)
}

/// [`engine_for`] with explicit queue depth and block factor (the
/// depth/backend parity sweeps and the O_DIRECT paths need both).
pub fn engine_custom(
    cfg: MergeConfig,
    runs: &[Vec<Record>],
    jobs: usize,
    depth: usize,
    rpb: u32,
) -> MergeEngine {
    let mut exec = ExecConfig::new(cfg);
    exec.records_per_block = rpb;
    exec.queue_depth = depth;
    exec.jobs = jobs;
    MergeEngine::new(exec, runs.iter().map(Vec::len).collect()).expect("plan")
}

/// Loads + executes on the in-memory backend.
pub fn run_memory(engine: &MergeEngine, runs: &[Vec<Record>], disks: usize) -> ExecOutcome {
    let mut queue = ThreadedQueue::memory(disks, engine.block_bytes(), engine.queue_options());
    engine.load(&mut queue, runs).expect("load");
    engine.execute(Box::new(queue)).expect("execute")
}

/// Loads + executes on the file backend under a fresh temp directory,
/// removing it afterwards.
pub fn run_file(engine: &MergeEngine, runs: &[Vec<Record>], disks: usize) -> ExecOutcome {
    let dir = unique_dir();
    let mut queue = ThreadedQueue::file(&dir, disks, engine.block_bytes(), engine.queue_options())
        .expect("create files");
    engine.load(&mut queue, runs).expect("load");
    let outcome = engine.execute(Box::new(queue)).expect("execute");
    let _ = std::fs::remove_dir_all(&dir);
    outcome
}

/// Loads + executes on the `O_DIRECT` file backend (the engine must be
/// planned with [`RPB_ALIGNED`]), removing the directory afterwards.
pub fn run_file_direct(engine: &MergeEngine, runs: &[Vec<Record>], disks: usize) -> ExecOutcome {
    let dir = unique_dir();
    let mut queue =
        ThreadedQueue::file_direct(&dir, disks, engine.block_bytes(), engine.queue_options())
            .expect("create O_DIRECT files");
    engine.load(&mut queue, runs).expect("load");
    let outcome = engine.execute(Box::new(queue)).expect("execute");
    let _ = std::fs::remove_dir_all(&dir);
    outcome
}

/// A unique scratch directory under the system temp dir.
pub fn unique_dir() -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "pm-engine-test-{}-{n}",
        std::process::id()
    ))
}

/// Asserts `outcome` merged every input record into key order (ties may
/// land in either order depending on the merge path, so the multiset is
/// compared sorted).
pub fn assert_sorted_output(outcome: &ExecOutcome, runs: &[Vec<Record>]) {
    assert!(
        outcome.output.windows(2).all(|w| w[0].key <= w[1].key),
        "merged output out of key order"
    );
    let mut got = outcome.output.clone();
    got.sort_by_key(|r| (r.key, r.rid));
    assert_eq!(got, reference(runs), "merged output is not the input multiset");
}
