//! [`IoQueue`] contract tests.
//!
//! The core tentpole invariant: the engine's merge decisions are a pure
//! function of the depletion sequence, so *any* completion interleaving
//! a queue produces — across disks, within a disk, in any reap batch
//! size — must yield byte-identical output and simulator request-
//! sequence parity. A property-based adversarial queue exercises that;
//! the deprecated depth-1 [`BlockingQueue`] shim anchors the
//! regression comparison against the pre-queue calling convention; and
//! the O_DIRECT alignment precondition must fail loudly, not corrupt.

mod common;

use std::io;
use std::time::Instant;

use pm_core::ScenarioBuilder;
use pm_disk::{BlockAddr, DiskId};
use pm_engine::{
    BlockDevice, ExecOutcome, IoCompletion, IoQueue, IoRequest, MemoryDevice, MergeEngine,
    ThreadedQueue, DIRECT_ALIGN,
};
use pm_extsort::Record;
use proptest::prelude::*;

#[cfg(feature = "uring")]
use common::RPB_ALIGNED;
use common::{engine_custom, form_runs, run_memory, unique_dir, RPB};

/// An adversarial [`IoQueue`] over a [`MemoryDevice`]: every submitted
/// request is serviced instantly, but completions are handed back in a
/// seeded pseudo-random order and in pseudo-random batch sizes — the
/// worst-case legal behaviour the contract allows (io_uring can
/// reorder even within one disk).
struct PermutedQueue {
    device: MemoryDevice,
    rng: u64,
    depth: usize,
    finished: Vec<IoCompletion>,
    epoch: Instant,
}

impl PermutedQueue {
    fn new(disks: usize, block_bytes: usize, seed: u64, depth: usize) -> Self {
        PermutedQueue {
            device: MemoryDevice::new(disks, block_bytes),
            rng: seed | 1,
            depth: depth.max(1),
            finished: Vec::new(),
            epoch: Instant::now(),
        }
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*: deterministic per seed, good enough to scramble
        // completion order.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn shuffle_finished(&mut self) {
        for i in (1..self.finished.len()).rev() {
            let j = (self.next_rand() % (i as u64 + 1)) as usize;
            self.finished.swap(i, j);
        }
    }
}

impl IoQueue for PermutedQueue {
    fn backend(&self) -> &'static str {
        "permuted"
    }

    fn block_bytes(&self) -> usize {
        self.device.block_bytes()
    }

    fn disks(&self) -> usize {
        self.device.disks()
    }

    fn depth(&self) -> usize {
        self.depth
    }

    fn write_block(&mut self, disk: DiskId, start: BlockAddr, data: &[u8]) -> io::Result<()> {
        self.device.write_block(disk, start, data)
    }

    fn open(&mut self, epoch: Instant) -> io::Result<()> {
        self.epoch = epoch;
        Ok(())
    }

    fn submit(&mut self, reqs: &[IoRequest]) -> io::Result<()> {
        for req in reqs {
            let mut buf = vec![0u8; self.device.block_bytes()];
            let result = self.device.read_block(req.req.disk, req.req.start, &mut buf);
            let now = Instant::now().duration_since(self.epoch).as_nanos() as u64;
            self.finished.push(IoCompletion {
                disk: req.req.disk.0,
                tag: req.req.tag,
                span: req.span,
                hint: req.req.sequential_hint,
                injected: None,
                submitted_ns: now,
                started_ns: now,
                finished_ns: now,
                data: result.map(|()| buf),
            });
        }
        self.shuffle_finished();
        Ok(())
    }

    fn complete(&mut self, out: &mut Vec<IoCompletion>, min_wait: usize) -> io::Result<usize> {
        if self.finished.len() < min_wait {
            return Err(io::Error::other(format!(
                "waiting for {min_wait} completions with only {} in flight",
                self.finished.len()
            )));
        }
        // Release a pseudo-random batch: at least min_wait, at most
        // everything outstanding.
        let extra = self.finished.len() - min_wait;
        let n = min_wait
            + if extra == 0 {
                0
            } else {
                (self.next_rand() % (extra as u64 + 1)) as usize
            };
        out.extend(self.finished.drain(..n));
        Ok(n)
    }

    fn shutdown(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Executes `engine` over the adversarial queue.
fn run_permuted(
    engine: &MergeEngine,
    runs: &[Vec<Record>],
    disks: usize,
    seed: u64,
    depth: usize,
) -> ExecOutcome {
    let mut queue = PermutedQueue::new(disks, engine.block_bytes(), seed, depth);
    engine.load(&mut queue, runs).expect("load");
    engine.execute(Box::new(queue)).expect("execute")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn out_of_order_completions_leave_the_merge_invariant(
        seed in any::<u64>(),
        depth in 1usize..=32,
    ) {
        let runs = form_runs(1500, 250, 13);
        let cfg = ScenarioBuilder::new(runs.len() as u32, 3)
            .inter(4)
            .seed(43)
            .build()
            .unwrap();
        let disks = cfg.disks as usize;
        let engine = engine_custom(cfg, &runs, 1, depth, RPB);
        let baseline = run_memory(&engine, &runs, disks);
        let permuted = run_permuted(&engine, &runs, disks, seed, depth);
        prop_assert_eq!(&permuted.output, &baseline.output);
        prop_assert_eq!(&permuted.requests, &baseline.requests);
        prop_assert_eq!(&permuted.depletion, &baseline.depletion);
        // Predict parity per disk straight off the adversarial run.
        let prediction = engine.predict(&permuted.depletion).expect("predict");
        prop_assert_eq!(&prediction.requests, &permuted.requests);
    }
}

#[test]
#[allow(deprecated)]
fn blocking_shim_matches_the_threaded_queue_at_depth_1() {
    // Depth-1 regression against the pre-queue calling convention: the
    // deprecated synchronous shim and the threaded queue must agree on
    // everything the engine reports.
    use pm_engine::BlockingQueue;

    let runs = form_runs(2500, 300, 31);
    let cfg = ScenarioBuilder::new(runs.len() as u32, 2)
        .inter(3)
        .seed(47)
        .build()
        .unwrap();
    let disks = cfg.disks as usize;
    let engine = engine_custom(cfg, &runs, 1, 1, RPB);
    let threaded = run_memory(&engine, &runs, disks);

    let mut shim = BlockingQueue::new(MemoryDevice::new(disks, engine.block_bytes()));
    engine.load(&mut shim, &runs).expect("load");
    let blocking = engine.execute(Box::new(shim)).expect("execute");

    assert_eq!(blocking.output, threaded.output);
    assert_eq!(blocking.requests, threaded.requests);
    assert_eq!(blocking.depletion, threaded.depletion);
    assert_eq!(
        blocking.report.per_disk_requests,
        threaded.report.per_disk_requests
    );
    assert_eq!(blocking.report.demand_ops, threaded.report.demand_ops);
    assert_eq!(blocking.report.fallback_ops, threaded.report.fallback_ops);
    assert_eq!(
        blocking.report.full_prefetch_ops,
        threaded.report.full_prefetch_ops
    );
}

#[test]
fn misaligned_blocks_fail_direct_open_with_the_alignment_error() {
    // The classic 40-records-per-block geometry (640 B) violates the
    // 512-byte O_DIRECT alignment; opening must fail up front with a
    // ConfigError naming the requirement, not corrupt reads later.
    let dir = unique_dir();
    let err = ThreadedQueue::file_direct(&dir, 2, 40 * 16, Default::default())
        .err()
        .expect("misaligned block size must be rejected");
    let msg = err.to_string();
    assert!(
        msg.contains(&DIRECT_ALIGN.to_string()),
        "error must name the {DIRECT_ALIGN}-byte alignment unit: {msg}"
    );
    assert!(msg.contains("640"), "error must name the offending size: {msg}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(feature = "uring")]
#[test]
fn uring_backend_matches_the_memory_reference() {
    use pm_engine::{uring_available, UringQueue};

    if !uring_available() {
        eprintln!("SKIP: io_uring unavailable on this kernel; uring smoke test not run");
        return;
    }
    let runs = form_runs(3000, 400, 37);
    let cfg = ScenarioBuilder::new(runs.len() as u32, 3)
        .inter(4)
        .seed(53)
        .build()
        .unwrap();
    let disks = cfg.disks as usize;
    for depth in [1usize, 4, 32] {
        let engine = engine_custom(cfg, &runs, 1, depth, RPB_ALIGNED);
        let baseline = run_memory(&engine, &runs, disks);
        let dir = unique_dir();
        let mut queue = UringQueue::create(&dir, disks, engine.block_bytes(), depth)
            .expect("create uring queue");
        engine.load(&mut queue, &runs).expect("load");
        let outcome = engine.execute(Box::new(queue)).expect("execute");
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(outcome.output, baseline.output, "depth={depth}: output");
        assert_eq!(outcome.requests, baseline.requests, "depth={depth}: requests");
        assert_eq!(outcome.depletion, baseline.depletion, "depth={depth}: depletion");
        let prediction = engine.predict(&outcome.depletion).expect("predict");
        assert_eq!(
            prediction.requests, outcome.requests,
            "depth={depth}: simulator replay"
        );
    }
}
