//! Backend equivalence: the merge engine's behaviour is a function of
//! the scenario and the data, not of the backend or the worker count.
//!
//! For every scenario in the matrix, the in-memory and file-backed
//! backends — across `jobs` values — must produce byte-identical merged
//! output, the identical per-disk block-request sequences, the identical
//! depletion sequence, and identical decision counters. This is the gate
//! the CI engine-smoke job builds on.

mod common;

use pm_core::{AdmissionPolicy, DataLayout, MergeConfig, PrefetchChoice, ScenarioBuilder};

use common::{
    assert_sorted_output, engine_custom, engine_for, form_runs, run_file, run_file_direct,
    run_memory, RPB_ALIGNED,
};

/// The scenario matrix: strategy × admission × choice × layout × sync
/// coverage, all small enough to execute in-memory in milliseconds.
fn scenarios() -> Vec<(&'static str, MergeConfig)> {
    vec![
        (
            "no-prefetch",
            ScenarioBuilder::new(8, 2).cache_blocks(16).seed(11).build().unwrap(),
        ),
        (
            "intra-sync",
            ScenarioBuilder::new(8, 2)
                .intra(4)
                .synchronized()
                .cache_blocks(64)
                .seed(12)
                .build()
                .unwrap(),
        ),
        (
            "inter-random",
            ScenarioBuilder::new(8, 3).inter(4).seed(13).build().unwrap(),
        ),
        (
            "inter-greedy-least-held",
            ScenarioBuilder::new(8, 3)
                .inter(4)
                .admission(AdmissionPolicy::Greedy)
                .prefetch_choice(PrefetchChoice::LeastHeld)
                .per_run_cap(Some(12))
                .seed(14)
                .build()
                .unwrap(),
        ),
        (
            "adaptive",
            ScenarioBuilder::new(8, 2)
                .adaptive(1, 8)
                .cache_blocks(96)
                .seed(15)
                .build()
                .unwrap(),
        ),
        (
            "intra-striped",
            ScenarioBuilder::new(8, 2)
                .intra(4)
                .layout(DataLayout::Striped)
                .cache_blocks(64)
                .seed(16)
                .build()
                .unwrap(),
        ),
    ]
}

#[test]
fn memory_and_file_backends_agree_across_jobs() {
    let runs = form_runs(4000, 500, 7);
    for (name, cfg) in scenarios() {
        let disks = cfg.disks as usize;
        let baseline = {
            let engine = engine_for(cfg, &runs, 1);
            run_memory(&engine, &runs, disks)
        };
        assert_sorted_output(&baseline, &runs);
        assert_eq!(baseline.report.records_merged, 4000, "{name}");

        for jobs in [2, 0] {
            let engine = engine_for(cfg, &runs, jobs);
            let memory = run_memory(&engine, &runs, disks);
            let file = run_file(&engine, &runs, disks);
            for (backend, outcome) in [("memory", &memory), ("file", &file)] {
                assert_eq!(
                    outcome.output, baseline.output,
                    "{name}/{backend}/jobs={jobs}: output diverged"
                );
                assert_eq!(
                    outcome.requests, baseline.requests,
                    "{name}/{backend}/jobs={jobs}: request sequences diverged"
                );
                assert_eq!(
                    outcome.depletion, baseline.depletion,
                    "{name}/{backend}/jobs={jobs}: depletion order diverged"
                );
                let (a, b) = (&outcome.report, &baseline.report);
                assert_eq!(a.demand_ops, b.demand_ops, "{name}/{backend}/jobs={jobs}");
                assert_eq!(a.fallback_ops, b.fallback_ops, "{name}/{backend}/jobs={jobs}");
                assert_eq!(
                    a.full_prefetch_ops, b.full_prefetch_ops,
                    "{name}/{backend}/jobs={jobs}"
                );
                assert_eq!(
                    a.per_disk_requests, b.per_disk_requests,
                    "{name}/{backend}/jobs={jobs}"
                );
            }
        }
    }
}

#[test]
fn queue_depth_and_backend_leave_decisions_invariant() {
    // Queue depth (the per-disk inflight bound) moves completion
    // *timing*, never merge decisions: across depths {1,4,32}, jobs
    // {1,4}, and the threaded backends (memory, buffered file, O_DIRECT
    // file), the output, per-disk request sequences, and depletion order
    // must all match a depth-1 single-worker baseline, and the simulator
    // must re-derive every per-disk request sequence from the depletion
    // alone.
    let runs = form_runs(3000, 400, 29);
    let cfg = ScenarioBuilder::new(8, 3).inter(4).seed(51).build().unwrap();
    let disks = cfg.disks as usize;
    let baseline = {
        let engine = engine_custom(cfg, &runs, 1, 1, RPB_ALIGNED);
        run_memory(&engine, &runs, disks)
    };
    assert_sorted_output(&baseline, &runs);
    for depth in [1usize, 4, 32] {
        for jobs in [1usize, 4] {
            let engine = engine_custom(cfg, &runs, jobs, depth, RPB_ALIGNED);
            let outcomes = [
                ("memory", run_memory(&engine, &runs, disks)),
                ("file", run_file(&engine, &runs, disks)),
                ("file-direct", run_file_direct(&engine, &runs, disks)),
            ];
            for (backend, outcome) in &outcomes {
                let tag = format!("{backend}/depth={depth}/jobs={jobs}");
                assert_eq!(outcome.output, baseline.output, "{tag}: output diverged");
                assert_eq!(
                    outcome.requests, baseline.requests,
                    "{tag}: per-disk request sequences diverged"
                );
                assert_eq!(
                    outcome.depletion, baseline.depletion,
                    "{tag}: depletion order diverged"
                );
                let prediction = engine.predict(&outcome.depletion).expect("predict");
                assert_eq!(
                    prediction.requests, outcome.requests,
                    "{tag}: simulator replay diverged"
                );
            }
        }
    }
}

#[test]
fn executions_are_repeatable() {
    // The same engine executed twice on fresh devices is bit-identical:
    // no hidden state leaks between executions.
    let runs = form_runs(2000, 250, 3);
    let cfg = ScenarioBuilder::new(8, 2).inter(4).seed(21).build().unwrap();
    let engine = engine_for(cfg, &runs, 0);
    let first = run_memory(&engine, &runs, 2);
    let second = run_memory(&engine, &runs, 2);
    assert_eq!(first.output, second.output);
    assert_eq!(first.requests, second.requests);
    assert_eq!(first.depletion, second.depletion);
}

#[test]
fn uneven_run_lengths_merge_completely() {
    // Run formation on a non-multiple leaves a short final run and a
    // partially filled final block in every run; nothing may be lost.
    let runs = form_runs(3217, 450, 9);
    assert!(runs.iter().any(|r| r.len() % common::RPB as usize != 0));
    let cfg = ScenarioBuilder::new(runs.len() as u32, 2)
        .inter(3)
        .seed(22)
        .build()
        .unwrap();
    let engine = engine_for(cfg, &runs, 0);
    let outcome = run_memory(&engine, &runs, 2);
    assert_sorted_output(&outcome, &runs);
    assert_eq!(outcome.report.records_merged, 3217);
}

#[test]
fn trace_events_cover_every_request() {
    use pm_core::EventKind;
    let runs = form_runs(2000, 250, 5);
    let cfg = ScenarioBuilder::new(8, 2).inter(4).seed(23).build().unwrap();
    let engine = engine_for(cfg, &runs, 0);
    let outcome = run_memory(&engine, &runs, 2);
    let issues = outcome
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::DiskIssue { .. }))
        .count() as u64;
    let transfers = outcome
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::DiskTransferDone { .. }))
        .count() as u64;
    let total: u64 = outcome.report.per_disk_requests.iter().sum();
    assert_eq!(issues, total);
    assert_eq!(transfers, total);
}
