//! Shared-device-set equivalence: scheduling policy and job
//! interleaving shift *when* requests are serviced, never *what* a job
//! does.
//!
//! Each job executing through a [`SharedDeviceSet`] must produce output,
//! request sequences and depletion byte-identical to the same engine
//! executing alone on a dedicated pool, and [`MergeEngine::predict`]
//! parity must hold per job — the acceptance gate the CI service-smoke
//! job builds on.

mod common;

use pm_core::ScenarioBuilder;
use pm_engine::{ExecOutcome, MergeEngine, SharedDeviceSet, ThreadedQueue};
use pm_extsort::Record;
use pm_service::sched_by_name;

use common::{assert_sorted_output, engine_for, form_runs, run_memory};

/// Two heterogeneous jobs over 3 shared disks.
fn jobs() -> Vec<(MergeEngine, Vec<Vec<Record>>)> {
    let specs = [
        (ScenarioBuilder::new(6, 3).inter(4).seed(21).build().unwrap(), 900, 160),
        (ScenarioBuilder::new(4, 2).intra(3).cache_blocks(48).seed(22).build().unwrap(), 500, 140),
    ];
    specs
        .into_iter()
        .map(|(cfg, total, memory)| {
            let runs = form_runs(total, memory, cfg.seed);
            let engine = engine_for(cfg, &runs, 1);
            (engine, runs)
        })
        .collect()
}

fn run_shared(sched: &str) -> Vec<ExecOutcome> {
    let jobs = jobs();
    let mut set = SharedDeviceSet::start(3, jobs.len(), sched_by_name(sched).unwrap(), 1.0);
    let mut threads = Vec::new();
    for (i, (engine, runs)) in jobs.into_iter().enumerate() {
        let mut queue = ThreadedQueue::memory(3, engine.block_bytes(), engine.queue_options());
        engine.load(&mut queue, &runs).expect("load");
        let port = set.port(queue.into_device(), 1 + i as u32);
        threads.push(std::thread::spawn(move || {
            let outcome = engine.execute_shared(port).expect("shared execute");
            (engine, runs, outcome)
        }));
    }
    let mut outcomes = Vec::new();
    for t in threads {
        let (engine, runs, outcome) = t.join().expect("job thread");
        assert_sorted_output(&outcome, &runs);
        // Per-job predict parity regardless of cross-job interleaving.
        let prediction = engine.predict(&outcome.depletion).expect("predict");
        assert_eq!(prediction.requests, outcome.requests, "request-sequence parity");
        outcomes.push(outcome);
    }
    set.shutdown();
    outcomes
}

#[test]
fn shared_jobs_match_isolated_runs_under_every_policy() {
    let isolated: Vec<ExecOutcome> = jobs()
        .into_iter()
        .map(|(engine, runs)| run_memory(&engine, &runs, 3))
        .collect();
    for sched in ["fifo", "wfq", "priority"] {
        let shared = run_shared(sched);
        for (job, (s, i)) in shared.iter().zip(&isolated).enumerate() {
            assert_eq!(s.output, i.output, "{sched} job {job}: output must be byte-identical");
            assert_eq!(s.requests, i.requests, "{sched} job {job}: request sequences");
            assert_eq!(s.depletion, i.depletion, "{sched} job {job}: depletion sequence");
            assert_eq!(
                s.report.per_disk_requests, i.report.per_disk_requests,
                "{sched} job {job}: per-disk request counts"
            );
        }
    }
}

#[test]
fn shared_trace_tags_carry_the_tenant_id() {
    let shared = run_shared("fifo");
    for (job, outcome) in shared.iter().enumerate() {
        let mut saw_issue = false;
        for ev in &outcome.events {
            if let pm_trace::EventKind::DiskIssue { tag, output: false, .. } = ev.kind {
                let (tenant, _, _) = pm_trace::unpack_tenant_tag(tag);
                assert_eq!(tenant as usize, job, "issue tag tenant id");
                saw_issue = true;
            }
        }
        assert!(saw_issue, "job {job} traced no disk issues");
    }
}
