//! Multi-pass execution: drive a [`MergeTreePlan`] through the engine.
//!
//! The single-pass [`MergeEngine`] tops out at the cache's fan-in; this
//! module walks a planned merge tree pass by pass, deriving each
//! group's scenario from the shared cache budget
//! ([`ScenarioBuilder::pass_scenario`]), loading the group's runs onto
//! a fresh device, executing, and feeding the outputs to the next pass
//! in group order. Every group is cross-checked against
//! [`MergeEngine::predict`], so the simulator's per-pass decision
//! parity — PR 5's core invariant — holds across the whole tree.
//!
//! # Temp-file lifecycle
//!
//! With [`PassBackend::File`], each execution claims a private staging
//! directory `<root>/exec-<pid>-<counter>/` (the counter is
//! process-global, so concurrent executors — threads or processes —
//! sharing one root never collide), and pass `p` group `g` stages its
//! inputs under `<token>/pass-<p>/group-<g>/`. A pass's directory is
//! removed as soon as the pass completes (its outputs live in memory)
//! and the token directory goes when the execution finishes — on the
//! error path too, since a gracefully failing invocation is done with
//! its token and a liveness sweep would rightly spare it for as long as
//! the process lives. Only a hard process death leaves an `exec-*`
//! directory behind, and the next invocation over the same root removes
//! only those whose owning process is no longer alive
//! ([`clean_stale_passes`]) — never a concurrent invocation's live
//! staging. The final output is never staged under the root, so an
//! interrupted execution leaves no partial output file.

use std::path::{Path, PathBuf};
use std::time::Duration;

use pm_core::{MergeConfig, PmError, ScenarioBuilder};
use pm_extsort::plan::MergeTreePlan;
use pm_extsort::Record;
use pm_metrics::{MetricsSink, NullMetrics};
use pm_sim::{SimDuration, SimTime};
use pm_trace::{EventKind, TraceEvent};

use crate::engine::{disk_seed_for, ExecConfig, MergeEngine};
use crate::ioqueue::IoQueue;
use crate::workers::ThreadedQueue;

/// Which device family every pass of a multi-pass execution runs on.
#[derive(Debug, Clone)]
pub enum PassBackend {
    /// In-memory golden reference.
    Memory,
    /// File-backed staging under `root` (see the module docs for the
    /// directory lifecycle).
    File {
        /// Directory that holds the per-pass staging subdirectories.
        root: PathBuf,
    },
    /// In-memory data with the modeled per-request service time
    /// injected, for predicted-vs-executed cross-checks.
    Latency,
    /// File-backed staging read back through `O_DIRECT` handles (same
    /// lifecycle as [`PassBackend::File`]; Linux, 512-byte-aligned
    /// blocks).
    FileDirect {
        /// Directory that holds the per-pass staging subdirectories.
        root: PathBuf,
    },
    /// io_uring over `O_DIRECT` disk files staged under `root` (same
    /// lifecycle as [`PassBackend::File`]). Requires the `uring` crate
    /// feature and a kernel with io_uring; callers should probe with
    /// `uring_available()` first.
    Uring {
        /// Directory that holds the per-pass staging subdirectories.
        root: PathBuf,
    },
}

/// Engine knobs shared by every pass (the per-pass merge scenario is
/// derived from the plan and the base config instead).
#[derive(Debug, Clone, Copy)]
pub struct MultiPassOptions {
    /// Records per block (fixed across passes so intermediate runs
    /// re-encode cleanly).
    pub records_per_block: u32,
    /// Per-disk I/O queue depth (`0` = each pass's prefetch depth).
    pub queue_depth: usize,
    /// I/O worker threads (0 = one per disk).
    pub jobs: usize,
    /// Wall-clock scale for injected latency sleeps.
    pub time_scale: f64,
}

impl Default for MultiPassOptions {
    fn default() -> Self {
        let d = ExecConfig::new(placeholder_config());
        MultiPassOptions {
            records_per_block: d.records_per_block,
            queue_depth: d.queue_depth,
            jobs: d.jobs,
            time_scale: d.time_scale,
        }
    }
}

fn placeholder_config() -> MergeConfig {
    ScenarioBuilder::new(2, 1).build().expect("valid placeholder")
}

/// What one pass of a multi-pass execution measured.
#[derive(Debug, Clone)]
pub struct PassOutcome {
    /// Pass index (0-based).
    pub pass: u32,
    /// Fan-in bound the pass was planned with.
    pub fan_in: u32,
    /// Input runs entering the pass.
    pub inputs: u32,
    /// Merge groups (including passthrough singletons).
    pub groups: u32,
    /// Groups that actually merged.
    pub merged_groups: u32,
    /// Blocks read by the pass's merges.
    pub blocks_read: u64,
    /// Records merged by the pass.
    pub records_merged: u64,
    /// Summed wall-clock time of the pass's group executions.
    pub wall: Duration,
    /// Summed merge-thread stall time.
    pub stall: Duration,
    /// Demand-fetch operations.
    pub demand_ops: u64,
    /// Demand operations degraded to single-block fallbacks.
    pub fallback_ops: u64,
    /// Demand operations whose full prefetch was admitted.
    pub full_prefetch_ops: u64,
    /// Summed modeled busy time across disks (latency backend only).
    pub modeled_busy: SimDuration,
    /// Summed simulator-predicted per-disk busy time.
    pub predicted_busy: SimDuration,
    /// Summed simulator-predicted read (total) time.
    pub predicted_read: SimDuration,
    /// Simulated read-time-weighted average I/O concurrency.
    pub sim_concurrency: f64,
    /// Simulated read-time-weighted average busy-disk count.
    pub sim_busy_disks: f64,
    /// The derived scenario of the pass's first merged group, if any —
    /// representative for reporting.
    pub scenario: Option<MergeConfig>,
    /// The pass's own event stream: a [`EventKind::PassBoundary`] marker
    /// followed by each group's events, shifted onto one pass-local
    /// time axis.
    pub events: Vec<TraceEvent>,
}

/// Everything a multi-pass execution produced.
#[derive(Debug, Clone)]
pub struct MultiPassOutcome {
    /// The fully merged record stream.
    pub output: Vec<Record>,
    /// Per-pass measurements, in execution order.
    pub passes: Vec<PassOutcome>,
    /// All pass streams concatenated onto one time axis (pass `p + 1`
    /// starts where pass `p`'s wall clock ended).
    pub events: Vec<TraceEvent>,
}

/// Process-global counter distinguishing concurrent executions within
/// one process; together with the pid it makes every invocation's
/// staging token unique across a shared root.
static NEXT_EXEC: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Claims this invocation's staging token under `root`.
fn exec_token() -> String {
    format!(
        "exec-{}-{}",
        std::process::id(),
        NEXT_EXEC.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    )
}

/// Whether the process that owns an `exec-<pid>-*` staging directory is
/// still alive. Errs on the side of *alive* when liveness cannot be
/// determined (no `/proc`), so a concurrent executor's staging is never
/// deleted.
fn owner_alive(pid: u32) -> bool {
    if pid == std::process::id() {
        return true;
    }
    let proc_root = Path::new("/proc");
    if !proc_root.is_dir() {
        return true;
    }
    proc_root.join(pid.to_string()).exists()
}

/// The pid embedded in an `exec-<pid>-<counter>` staging-directory name,
/// if the name follows that form.
fn staged_pid(name: &str) -> Option<u32> {
    let rest = name.strip_prefix("exec-")?;
    let (pid, counter) = rest.split_once('-')?;
    if counter.is_empty() || !counter.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    pid.parse().ok()
}

/// Removes stale staging directories left under `root` by interrupted
/// multi-pass executions: `exec-<pid>-*` tokens whose owning process is
/// gone, plus bare `pass-*` directories from the pre-token layout.
/// Directories owned by live processes — including concurrent executors
/// in this process — are left alone. Returns how many were removed.
///
/// # Errors
///
/// Returns [`PmError::Io`] if the directory cannot be scanned or a
/// stale entry cannot be removed.
pub fn clean_stale_passes(root: &Path) -> Result<u32, PmError> {
    if !root.exists() {
        return Ok(0);
    }
    let mut removed = 0;
    let entries = std::fs::read_dir(root)
        .map_err(|e| PmError::io(format!("scanning {}", root.display()), e))?;
    for entry in entries {
        let entry =
            entry.map_err(|e| PmError::io(format!("scanning {}", root.display()), e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if !entry.path().is_dir() {
            continue;
        }
        let stale = name.starts_with("pass-")
            || staged_pid(&name).is_some_and(|pid| !owner_alive(pid));
        if stale {
            std::fs::remove_dir_all(entry.path()).map_err(|e| {
                PmError::io(format!("removing stale {}", entry.path().display()), e)
            })?;
            removed += 1;
        }
    }
    Ok(removed)
}

/// Executes a planned merge tree pass by pass.
#[derive(Debug, Clone)]
pub struct MultiPassExecutor<'p> {
    plan: &'p MergeTreePlan,
    base: MergeConfig,
    opts: MultiPassOptions,
    backend: PassBackend,
}

impl<'p> MultiPassExecutor<'p> {
    /// Binds a plan to a base scenario, engine options, and a backend.
    /// The base scenario's strategy family, cache budget, disks and
    /// seed drive every derived pass scenario.
    #[must_use]
    pub fn new(
        plan: &'p MergeTreePlan,
        base: MergeConfig,
        opts: MultiPassOptions,
        backend: PassBackend,
    ) -> Self {
        MultiPassExecutor { plan, base, opts, backend }
    }

    /// Runs the whole tree over `runs` (level-0 inputs, in plan order).
    ///
    /// # Errors
    ///
    /// Propagates any scenario, I/O, or parity error from a pass.
    pub fn run(&self, runs: Vec<Vec<Record>>) -> Result<MultiPassOutcome, PmError> {
        self.run_with_hook(runs, |_| Ok(()))
    }

    /// [`MultiPassExecutor::run`] with a metrics sink: each group's
    /// engine execution records its per-disk observations and each
    /// completed pass records `pm_pass_blocks_read` /
    /// `pm_pass_records_merged` under its pass label.
    ///
    /// # Errors
    ///
    /// Propagates any scenario, I/O, or parity error from a pass.
    pub fn run_metered<M: MetricsSink>(
        &self,
        runs: Vec<Vec<Record>>,
        metrics: &M,
    ) -> Result<MultiPassOutcome, PmError> {
        self.run_with_hook_metered(runs, |_| Ok(()), metrics)
    }

    /// Like [`MultiPassExecutor::run`], with a fault-injection hook
    /// called after each pass's groups complete but *before* the pass's
    /// staging directory is removed — the crash window a test wants to
    /// hit. A hook error aborts the execution; like any graceful
    /// failure, the invocation's staging token is removed on the way
    /// out (only a hard process death leaves one behind, for a later
    /// invocation's liveness sweep).
    ///
    /// # Errors
    ///
    /// Propagates pass errors and whatever the hook returns.
    pub fn run_with_hook(
        &self,
        runs: Vec<Vec<Record>>,
        hook: impl FnMut(u32) -> Result<(), PmError>,
    ) -> Result<MultiPassOutcome, PmError> {
        self.run_with_hook_metered(runs, hook, &NullMetrics)
    }

    /// [`MultiPassExecutor::run_with_hook`] with a metrics sink (see
    /// [`MultiPassExecutor::run_metered`]).
    ///
    /// # Errors
    ///
    /// Propagates pass errors and whatever the hook returns.
    pub fn run_with_hook_metered<M: MetricsSink>(
        &self,
        runs: Vec<Vec<Record>>,
        mut hook: impl FnMut(u32) -> Result<(), PmError>,
        metrics: &M,
    ) -> Result<MultiPassOutcome, PmError> {
        if let Some(first) = self.plan.passes.first() {
            if first.run_blocks.len() != runs.len() {
                return Err(PmError::Usage(format!(
                    "plan expects {} input runs but {} were supplied",
                    first.run_blocks.len(),
                    runs.len()
                )));
            }
        }
        // This invocation's private staging root: stale leftovers are
        // swept first, then every pass stages under a token no
        // concurrent executor shares.
        let staging = match &self.backend {
            PassBackend::File { root }
            | PassBackend::FileDirect { root }
            | PassBackend::Uring { root } => {
                clean_stale_passes(root)?;
                Some(root.join(exec_token()))
            }
            _ => None,
        };
        let result = self.execute_passes(runs, &mut hook, &staging, metrics);
        if result.is_err() {
            // This invocation is done with its token; left behind it
            // would survive every sweep for as long as the process
            // lives. Cleanup failure is secondary to the real error.
            if let Some(staging) = &staging {
                let _ = std::fs::remove_dir_all(staging);
            }
        }
        result
    }

    fn execute_passes<M: MetricsSink>(
        &self,
        runs: Vec<Vec<Record>>,
        hook: &mut impl FnMut(u32) -> Result<(), PmError>,
        staging: &Option<PathBuf>,
        metrics: &M,
    ) -> Result<MultiPassOutcome, PmError> {
        let mut level = runs;
        let mut passes: Vec<PassOutcome> = Vec::with_capacity(self.plan.passes.len());
        let mut events: Vec<TraceEvent> = Vec::new();
        let mut tree_offset = SimDuration::ZERO;
        for (p, pass) in self.plan.passes.iter().enumerate() {
            let mut out = PassOutcome {
                pass: p as u32,
                fan_in: pass.fan_in,
                inputs: level.len() as u32,
                groups: pass.groups.len() as u32,
                merged_groups: 0,
                blocks_read: 0,
                records_merged: 0,
                wall: Duration::ZERO,
                stall: Duration::ZERO,
                demand_ops: 0,
                fallback_ops: 0,
                full_prefetch_ops: 0,
                modeled_busy: SimDuration::ZERO,
                predicted_busy: SimDuration::ZERO,
                predicted_read: SimDuration::ZERO,
                sim_concurrency: 0.0,
                sim_busy_disks: 0.0,
                scenario: None,
                events: vec![TraceEvent {
                    at: SimTime::ZERO,
                    kind: EventKind::PassBoundary {
                        pass: p as u32,
                        groups: pass.groups.len() as u32,
                    },
                }],
            };
            let mut conc_weight = 0.0_f64;
            let mut next: Vec<Vec<Record>> = Vec::with_capacity(pass.groups.len());
            let mut inputs_iter = level.into_iter();
            let mut pass_elapsed = SimDuration::ZERO;
            for (g, group) in pass.groups.iter().enumerate() {
                let inputs: Vec<Vec<Record>> =
                    inputs_iter.by_ref().take(group.len).collect();
                if group.len == 1 {
                    // Passthrough: the run advances a level without I/O.
                    next.push(inputs.into_iter().next().expect("one input"));
                    continue;
                }
                let cfg = ScenarioBuilder::pass_scenario(
                    &self.base,
                    group.len as u32,
                    p as u32,
                    g as u32,
                )?;
                let mut exec = ExecConfig::new(cfg);
                exec.records_per_block = self.opts.records_per_block;
                exec.queue_depth = self.opts.queue_depth;
                exec.jobs = self.opts.jobs;
                exec.time_scale = self.opts.time_scale;
                let engine =
                    MergeEngine::new(exec, inputs.iter().map(Vec::len).collect())?;
                let cfg = *engine.merge_config();
                let disks = cfg.disks as usize;
                let opts = engine.queue_options();
                let mut queue: Box<dyn IoQueue> = match &self.backend {
                    PassBackend::Memory => {
                        Box::new(ThreadedQueue::memory(disks, engine.block_bytes(), opts))
                    }
                    PassBackend::File { .. } => {
                        let dir = group_dir(staging, "file", p, g)?;
                        Box::new(
                            ThreadedQueue::file(&dir, disks, engine.block_bytes(), opts)
                                .map_err(|e| {
                                    PmError::io(format!("creating {}", dir.display()), e)
                                })?,
                        )
                    }
                    PassBackend::FileDirect { .. } => {
                        let dir = group_dir(staging, "file-direct", p, g)?;
                        Box::new(ThreadedQueue::file_direct(
                            &dir,
                            disks,
                            engine.block_bytes(),
                            opts,
                        )?)
                    }
                    PassBackend::Latency => Box::new(ThreadedQueue::latency(
                        disks,
                        engine.block_bytes(),
                        cfg.disk_spec,
                        cfg.discipline,
                        disk_seed_for(&cfg),
                        opts,
                    )),
                    #[cfg(feature = "uring")]
                    PassBackend::Uring { .. } => {
                        let dir = group_dir(staging, "uring", p, g)?;
                        Box::new(crate::uring::UringQueue::create(
                            &dir,
                            disks,
                            engine.block_bytes(),
                            opts.depth,
                        )?)
                    }
                    #[cfg(not(feature = "uring"))]
                    PassBackend::Uring { .. } => {
                        return Err(PmError::Usage(
                            "the uring backend requires building with --features uring"
                                .into(),
                        ))
                    }
                };
                engine.load(&mut *queue, &inputs)?;
                let outcome = engine.execute_metered(queue, metrics)?;
                let prediction = engine.predict(&outcome.depletion)?;
                if outcome.requests != prediction.requests {
                    return Err(PmError::Tolerance(format!(
                        "pass {p} group {g}: engine per-disk request sequences \
                         diverged from the simulator's replay"
                    )));
                }
                out.merged_groups += 1;
                out.blocks_read += outcome.report.blocks_merged;
                out.records_merged += outcome.report.records_merged;
                out.wall += outcome.report.wall;
                out.stall += outcome.report.stall;
                out.demand_ops += outcome.report.demand_ops;
                out.fallback_ops += outcome.report.fallback_ops;
                out.full_prefetch_ops += outcome.report.full_prefetch_ops;
                out.modeled_busy += outcome
                    .report
                    .per_disk_modeled_busy
                    .iter()
                    .copied()
                    .sum::<SimDuration>();
                out.predicted_busy += prediction
                    .report
                    .per_disk_busy
                    .iter()
                    .copied()
                    .sum::<SimDuration>();
                out.predicted_read += prediction.report.total;
                let weight = prediction.report.total.as_nanos() as f64;
                out.sim_concurrency += prediction.report.avg_concurrency * weight;
                out.sim_busy_disks += prediction.report.avg_busy_disks * weight;
                conc_weight += weight;
                if out.scenario.is_none() {
                    out.scenario = Some(cfg);
                }
                out.events.extend(outcome.events.iter().map(|ev| TraceEvent {
                    at: ev.at + pass_elapsed,
                    kind: ev.kind,
                }));
                pass_elapsed += wall_as_sim(outcome.report.wall);
                next.push(outcome.output);
            }
            if conc_weight > 0.0 {
                out.sim_concurrency /= conc_weight;
                out.sim_busy_disks /= conc_weight;
            }
            level = next;
            // The crash window: the pass's outputs exist, its staging
            // directory has not been removed yet.
            hook(p as u32)?;
            if let Some(staging) = &staging {
                let dir = staging.join(format!("pass-{p:02}"));
                if dir.exists() {
                    std::fs::remove_dir_all(&dir).map_err(|e| {
                        PmError::io(format!("removing {}", dir.display()), e)
                    })?;
                }
            }
            events.extend(out.events.iter().map(|ev| TraceEvent {
                at: ev.at + tree_offset,
                kind: ev.kind,
            }));
            tree_offset += wall_as_sim(out.wall);
            if M::ENABLED {
                metrics.pass_done(out.pass, out.blocks_read, out.records_merged);
            }
            passes.push(out);
        }
        if let Some(staging) = &staging {
            if staging.exists() {
                std::fs::remove_dir_all(staging).map_err(|e| {
                    PmError::io(format!("removing {}", staging.display()), e)
                })?;
            }
        }
        let output = level.into_iter().next().unwrap_or_default();
        Ok(MultiPassOutcome { output, passes, events })
    }
}

fn wall_as_sim(wall: Duration) -> SimDuration {
    SimDuration::from_nanos(u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX))
}

/// The staging directory for pass `p`, group `g` of a file-family
/// backend (which always carries a staging token).
fn group_dir(
    staging: &Option<PathBuf>,
    backend: &str,
    p: usize,
    g: usize,
) -> Result<PathBuf, PmError> {
    staging
        .as_ref()
        .map(|s| s.join(format!("pass-{p:02}")).join(format!("group-{g:02}")))
        .ok_or_else(|| {
            PmError::Usage(format!("the {backend} backend requires a staging root"))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_extsort::plan::{plan_merge_tree, PlanPolicy};

    fn uniform_runs(k: usize, per_run: usize) -> Vec<Vec<Record>> {
        // Interleave keys so every run participates until the end.
        (0..k)
            .map(|r| {
                (0..per_run)
                    .map(|i| Record::new((i * k + r) as u64, (r * per_run + i) as u64))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn two_pass_memory_merge_matches_reference() {
        let rpb = 20;
        let runs = uniform_runs(8, 100);
        let mut expect: Vec<Record> = runs.iter().flatten().copied().collect();
        expect.sort();
        let lens: Vec<u32> = runs
            .iter()
            .map(|r| (r.len() as u32).div_ceil(rpb))
            .collect();
        let plan = plan_merge_tree(&lens, 3, PlanPolicy::GreedyMax).unwrap();
        assert_eq!(plan.num_passes(), 2);
        let base = ScenarioBuilder::new(3, 2).inter(2).seed(11).build().unwrap();
        let opts = MultiPassOptions { records_per_block: rpb, ..Default::default() };
        let exec = MultiPassExecutor::new(&plan, base, opts, PassBackend::Memory);
        let out = exec.run(runs).unwrap();
        assert_eq!(out.output, expect);
        assert_eq!(out.passes.len(), 2);
        // Pass 0: groups [3,3,2], all merged; pass 1: one 3-way group.
        assert_eq!(out.passes[0].merged_groups, 3);
        assert_eq!(out.passes[1].merged_groups, 1);
        // Pass boundaries present and ordered in the combined stream.
        let boundaries: Vec<u32> = out
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::PassBoundary { pass, .. } => Some(pass),
                _ => None,
            })
            .collect();
        assert_eq!(boundaries, vec![0, 1]);
    }

    #[test]
    fn deterministic_across_jobs() {
        let rpb = 20;
        let runs = uniform_runs(9, 60);
        let lens: Vec<u32> = runs
            .iter()
            .map(|r| (r.len() as u32).div_ceil(rpb))
            .collect();
        let plan = plan_merge_tree(&lens, 4, PlanPolicy::Balanced).unwrap();
        let base = ScenarioBuilder::new(4, 3).inter(2).seed(5).build().unwrap();
        let mut outs = Vec::new();
        for jobs in [1, 4] {
            let opts = MultiPassOptions {
                records_per_block: rpb,
                jobs,
                ..Default::default()
            };
            let exec = MultiPassExecutor::new(&plan, base, opts, PassBackend::Memory);
            outs.push(exec.run(runs.clone()).unwrap().output);
        }
        assert_eq!(outs[0], outs[1]);
    }

    #[test]
    fn single_run_needs_no_pass() {
        let runs = uniform_runs(1, 40);
        let plan = plan_merge_tree(&[2], 8, PlanPolicy::GreedyMax).unwrap();
        let base = ScenarioBuilder::new(2, 1).build().unwrap();
        let exec = MultiPassExecutor::new(
            &plan,
            base,
            MultiPassOptions { records_per_block: 20, ..Default::default() },
            PassBackend::Memory,
        );
        let out = exec.run(runs.clone()).unwrap();
        assert_eq!(out.output, runs[0]);
        assert!(out.passes.is_empty());
    }

    #[test]
    fn run_count_mismatch_is_rejected() {
        let plan = plan_merge_tree(&[5, 5, 5], 2, PlanPolicy::GreedyMax).unwrap();
        let base = ScenarioBuilder::new(2, 1).build().unwrap();
        let exec = MultiPassExecutor::new(
            &plan,
            base,
            MultiPassOptions::default(),
            PassBackend::Memory,
        );
        let err = exec.run(uniform_runs(2, 40)).unwrap_err();
        assert!(err.to_string().contains("input runs"), "{err}");
    }

    fn scratch_root(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "pm-multipass-{tag}-{}-{}",
            std::process::id(),
            NEXT_EXEC.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ))
    }

    /// Two executors running concurrently over ONE staging root must not
    /// delete each other's pass directories — the race the per-invocation
    /// token exists to prevent (each run here also cleans stale staging
    /// on entry, which previously swept the sibling's live `pass-*`).
    #[test]
    fn concurrent_executors_share_a_staging_root() {
        let rpb = 20;
        let root = scratch_root("race");
        std::fs::create_dir_all(&root).unwrap();
        let mut expects = Vec::new();
        let mut outs = Vec::new();
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for seed in [11u64, 12, 13] {
                let root = root.clone();
                handles.push(s.spawn(move || {
                    let runs = uniform_runs(8, 100);
                    let mut expect: Vec<Record> =
                        runs.iter().flatten().copied().collect();
                    expect.sort();
                    let lens: Vec<u32> = runs
                        .iter()
                        .map(|r| (r.len() as u32).div_ceil(rpb))
                        .collect();
                    let plan =
                        plan_merge_tree(&lens, 3, PlanPolicy::GreedyMax).unwrap();
                    let base = ScenarioBuilder::new(3, 2)
                        .inter(2)
                        .seed(seed)
                        .build()
                        .unwrap();
                    let opts = MultiPassOptions {
                        records_per_block: rpb,
                        ..Default::default()
                    };
                    let exec = MultiPassExecutor::new(
                        &plan,
                        base,
                        opts,
                        PassBackend::File { root },
                    );
                    (expect, exec.run(runs).unwrap().output)
                }));
            }
            for h in handles {
                let (expect, out) = h.join().unwrap();
                expects.push(expect);
                outs.push(out);
            }
        });
        for (expect, out) in expects.iter().zip(&outs) {
            assert_eq!(out, expect, "a concurrent executor lost staged blocks");
        }
        // Every invocation removed its own token on completion.
        let leftover: Vec<_> = std::fs::read_dir(&root)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert!(leftover.is_empty(), "staging left behind: {leftover:?}");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn stale_cleanup_spares_live_owners() {
        let root = scratch_root("stale");
        // A legacy pre-token leftover, a dead owner's token, our own
        // (live) token, and a non-staging bystander.
        let legacy = root.join("pass-00");
        let dead = root.join("exec-999999999-0");
        let live = root.join(format!("exec-{}-12345", std::process::id()));
        let other = root.join("keep-me");
        for d in [&legacy, &dead, &live, &other] {
            std::fs::create_dir_all(d).unwrap();
        }
        let removed = clean_stale_passes(&root).unwrap();
        assert_eq!(removed, 2);
        assert!(!legacy.exists() && !dead.exists());
        assert!(live.exists(), "live invocation's staging was swept");
        assert!(other.exists(), "unrelated directory was swept");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn staging_token_names_parse() {
        assert_eq!(staged_pid("exec-123-0"), Some(123));
        assert_eq!(staged_pid("exec-123-"), None);
        assert_eq!(staged_pid("exec-123"), None);
        assert_eq!(staged_pid("exec-abc-0"), None);
        assert_eq!(staged_pid("pass-00"), None);
        let token = exec_token();
        assert_eq!(staged_pid(&token), Some(std::process::id()));
    }
}
