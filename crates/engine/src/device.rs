//! The [`BlockDevice`] abstraction and its three backends.
//!
//! A block device is an array of `D` independent disks addressed by
//! `(disk, block)`; the engine reads one block per request, exactly as
//! the simulator models. Three backends implement it:
//!
//! * [`MemoryDevice`] — blocks live in per-disk `Vec<u8>`s. The golden
//!   reference: zero latency, no OS involvement.
//! * [`FileDevice`] — one file per simulated disk, positioned reads via
//!   `read_at`. Point it at tmpfs for a fast smoke test or at real
//!   spindles for real measurements.
//! * [`LatencyDevice`] — wraps another backend and injects the
//!   deterministic per-request delay the pm-disk seek/rotation model
//!   computes, enabling sim-vs-engine cross-validation: the injected
//!   service breakdowns are bit-identical to the simulator's for the
//!   same request sequence.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use pm_core::{ConfigError, PmError};
use pm_disk::{
    BlockAddr, DiskArray, DiskId, DiskRequest, DiskSpec, QueueDiscipline, ServiceBreakdown,
};
use pm_sim::SimTime;

/// The alignment direct I/O requires of block sizes and buffers: the
/// logical sector size `O_DIRECT` transfers must be a multiple of.
pub const DIRECT_ALIGN: usize = 512;

#[cfg(target_os = "linux")]
const O_DIRECT: i32 = 0o040000;

/// The service a [`LatencyDevice`] computed for one request.
#[derive(Debug, Clone, Copy)]
pub struct InjectedService {
    /// Seek / rotational-latency / transfer decomposition.
    pub breakdown: ServiceBreakdown,
    /// Whether the request streamed sequentially (no seek or latency).
    pub sequential: bool,
}

/// A `D`-disk array of block storage.
///
/// Reads take `&self` so I/O worker threads can issue them concurrently;
/// writes (`&mut self`) happen only during single-threaded setup, before
/// the device is shared.
pub trait BlockDevice: Send + Sync {
    /// Bytes per block.
    fn block_bytes(&self) -> usize;

    /// Number of disks.
    fn disks(&self) -> usize;

    /// Reads the block at `start` on `disk` into `buf`
    /// (`buf.len() == block_bytes()`).
    ///
    /// # Errors
    ///
    /// Any I/O failure, including reading a block that was never written.
    fn read_block(&self, disk: DiskId, start: BlockAddr, buf: &mut [u8]) -> io::Result<()>;

    /// Writes one block at `start` on `disk` (setup only).
    ///
    /// # Errors
    ///
    /// Any I/O failure.
    fn write_block(&mut self, disk: DiskId, start: BlockAddr, data: &[u8]) -> io::Result<()>;

    /// The mechanical service this request would cost, if this backend
    /// models one. The default (memory, file) models none: requests
    /// complete as fast as the host executes them.
    fn service_timing(&self, _req: &DiskRequest) -> Option<InjectedService> {
        None
    }
}

/// In-memory backend: per-disk byte vectors, grown on write.
#[derive(Debug)]
pub struct MemoryDevice {
    block_bytes: usize,
    disks: Vec<Vec<u8>>,
}

impl MemoryDevice {
    /// An empty `disks`-disk array with the given block size.
    #[must_use]
    pub fn new(disks: usize, block_bytes: usize) -> Self {
        MemoryDevice {
            block_bytes,
            disks: vec![Vec::new(); disks],
        }
    }
}

impl BlockDevice for MemoryDevice {
    fn block_bytes(&self) -> usize {
        self.block_bytes
    }

    fn disks(&self) -> usize {
        self.disks.len()
    }

    fn read_block(&self, disk: DiskId, start: BlockAddr, buf: &mut [u8]) -> io::Result<()> {
        let offset = start.0 as usize * self.block_bytes;
        let storage = self
            .disks
            .get(disk.0 as usize)
            .ok_or_else(|| io::Error::other(format!("no such disk {}", disk.0)))?;
        let end = offset + self.block_bytes;
        if end > storage.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("read of unwritten block {} on disk {}", start.0, disk.0),
            ));
        }
        buf.copy_from_slice(&storage[offset..end]);
        Ok(())
    }

    fn write_block(&mut self, disk: DiskId, start: BlockAddr, data: &[u8]) -> io::Result<()> {
        let offset = start.0 as usize * self.block_bytes;
        let storage = self
            .disks
            .get_mut(disk.0 as usize)
            .ok_or_else(|| io::Error::other(format!("no such disk {}", disk.0)))?;
        let end = offset + self.block_bytes;
        if storage.len() < end {
            storage.resize(end, 0);
        }
        storage[offset..end].copy_from_slice(data);
        Ok(())
    }
}

/// File-backed backend: one regular file per simulated disk
/// (`disk-00.bin`, `disk-01.bin`, …) under a caller-chosen directory,
/// read with positioned `read_at` so concurrent workers never share a
/// file cursor.
#[derive(Debug)]
pub struct FileDevice {
    block_bytes: usize,
    paths: Vec<PathBuf>,
    files: Vec<std::fs::File>,
    /// Page-cache-bypassing read handles, when opened with
    /// [`FileDevice::create_direct`].
    direct: Option<Vec<std::fs::File>>,
    /// Buffered writes since the last direct read: direct reads flush
    /// them first so they never race the page cache.
    dirty: AtomicBool,
}

impl FileDevice {
    /// Creates (truncating) one backing file per disk under `dir`.
    ///
    /// # Errors
    ///
    /// Returns any error from creating the directory or the files.
    pub fn create(dir: &Path, disks: usize, block_bytes: usize) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let mut paths = Vec::with_capacity(disks);
        let mut files = Vec::with_capacity(disks);
        for d in 0..disks {
            let path = dir.join(format!("disk-{d:02}.bin"));
            let file = std::fs::File::options()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(&path)?;
            paths.push(path);
            files.push(file);
        }
        Ok(FileDevice {
            block_bytes,
            paths,
            files,
            direct: None,
            dirty: AtomicBool::new(false),
        })
    }

    /// Like [`FileDevice::create`], but reads bypass the page cache:
    /// each disk gets a second `O_DIRECT` read handle, and read buffers
    /// are bounced through [`DIRECT_ALIGN`]-aligned scratch memory.
    /// Writes stay buffered (loading is setup-time work); the first
    /// read after a write syncs the files so direct reads observe them.
    ///
    /// # Errors
    ///
    /// [`ConfigError::BlockAlignment`] when `block_bytes` is not a
    /// positive multiple of [`DIRECT_ALIGN`]; otherwise any error from
    /// creating or reopening the files.
    #[cfg(target_os = "linux")]
    pub fn create_direct(dir: &Path, disks: usize, block_bytes: usize) -> Result<Self, PmError> {
        if block_bytes == 0 || !block_bytes.is_multiple_of(DIRECT_ALIGN) {
            return Err(ConfigError::BlockAlignment {
                block_bytes,
                required: DIRECT_ALIGN,
            }
            .into());
        }
        let mut dev = Self::create(dir, disks, block_bytes)
            .map_err(|e| PmError::device("file-direct", format!("creating files under {}", dir.display()), e))?;
        let mut direct = Vec::with_capacity(disks);
        for path in &dev.paths {
            use std::os::unix::fs::OpenOptionsExt;
            let file = std::fs::File::options()
                .read(true)
                .custom_flags(O_DIRECT)
                .open(path)
                .map_err(|e| {
                    PmError::device(
                        "file-direct",
                        format!("opening {} with O_DIRECT", path.display()),
                        e,
                    )
                })?;
            direct.push(file);
        }
        dev.direct = Some(direct);
        Ok(dev)
    }

    /// Unsupported off Linux.
    ///
    /// # Errors
    ///
    /// Always: `O_DIRECT` is Linux-only here.
    #[cfg(not(target_os = "linux"))]
    pub fn create_direct(_dir: &Path, _disks: usize, _block_bytes: usize) -> Result<Self, PmError> {
        Err(PmError::device(
            "file-direct",
            "opening with O_DIRECT",
            io::Error::other("O_DIRECT file device is only supported on Linux"),
        ))
    }

    /// Whether reads bypass the page cache.
    #[must_use]
    pub fn is_direct(&self) -> bool {
        self.direct.is_some()
    }

    /// The backing file of `disk`.
    #[must_use]
    pub fn path(&self, disk: DiskId) -> &Path {
        &self.paths[disk.0 as usize]
    }
}

impl BlockDevice for FileDevice {
    fn block_bytes(&self) -> usize {
        self.block_bytes
    }

    fn disks(&self) -> usize {
        self.files.len()
    }

    fn read_block(&self, disk: DiskId, start: BlockAddr, buf: &mut [u8]) -> io::Result<()> {
        use std::os::unix::fs::FileExt;
        let offset = start.0 * self.block_bytes as u64;
        if let Some(direct) = &self.direct {
            if self.dirty.swap(false, Ordering::AcqRel) {
                for file in &self.files {
                    file.sync_data()?;
                }
            }
            let file = direct
                .get(disk.0 as usize)
                .ok_or_else(|| io::Error::other(format!("no such disk {}", disk.0)))?;
            // O_DIRECT needs an aligned buffer; bounce through an
            // over-allocated scratch vector sliced at the alignment.
            let mut scratch = vec![0u8; self.block_bytes + DIRECT_ALIGN];
            let align = (DIRECT_ALIGN - (scratch.as_ptr() as usize % DIRECT_ALIGN)) % DIRECT_ALIGN;
            let aligned = &mut scratch[align..align + self.block_bytes];
            file.read_exact_at(aligned, offset)?;
            buf.copy_from_slice(aligned);
            return Ok(());
        }
        let file = self
            .files
            .get(disk.0 as usize)
            .ok_or_else(|| io::Error::other(format!("no such disk {}", disk.0)))?;
        file.read_exact_at(buf, offset)
    }

    fn write_block(&mut self, disk: DiskId, start: BlockAddr, data: &[u8]) -> io::Result<()> {
        use std::os::unix::fs::FileExt;
        let file = self
            .files
            .get(disk.0 as usize)
            .ok_or_else(|| io::Error::other(format!("no such disk {}", disk.0)))?;
        file.write_all_at(data, start.0 * self.block_bytes as u64)?;
        if self.direct.is_some() {
            self.dirty.store(true, Ordering::Release);
        }
        Ok(())
    }
}

/// Latency-injecting wrapper: data comes from the inner backend, service
/// time from the pm-disk model.
///
/// Each disk is driven on its own virtual clock: a request is submitted
/// to the model at the disk's current virtual instant, serviced
/// immediately (the engine's workers keep per-disk FIFO order and one
/// request in service per disk), and the virtual clock advances to the
/// completion. Seeded identically to the simulator's [`DiskArray`], the
/// per-request breakdown sequence is therefore bit-identical to the
/// simulator's for the same per-disk request sequence under FIFO
/// scheduling.
pub struct LatencyDevice<D> {
    inner: D,
    model: Mutex<LatencyModel>,
}

struct LatencyModel {
    array: DiskArray,
    vnow: Vec<SimTime>,
}

impl<D: BlockDevice> LatencyDevice<D> {
    /// Wraps `inner`, modeling `disks` drives of `spec` with the given
    /// queue discipline and disk-seed (see
    /// [`crate::disk_seed_for`] to mirror a simulation's seed
    /// derivation).
    #[must_use]
    pub fn new(
        inner: D,
        disks: usize,
        spec: DiskSpec,
        discipline: QueueDiscipline,
        disk_seed: u64,
    ) -> Self {
        LatencyDevice {
            inner,
            model: Mutex::new(LatencyModel {
                array: DiskArray::new(disks, spec, discipline, disk_seed),
                vnow: vec![SimTime::ZERO; disks],
            }),
        }
    }

    /// Unwraps the inner backend.
    pub fn into_inner(self) -> D {
        self.inner
    }
}

impl<D: BlockDevice> BlockDevice for LatencyDevice<D> {
    fn block_bytes(&self) -> usize {
        self.inner.block_bytes()
    }

    fn disks(&self) -> usize {
        self.inner.disks()
    }

    fn read_block(&self, disk: DiskId, start: BlockAddr, buf: &mut [u8]) -> io::Result<()> {
        self.inner.read_block(disk, start, buf)
    }

    fn write_block(&mut self, disk: DiskId, start: BlockAddr, data: &[u8]) -> io::Result<()> {
        self.inner.write_block(disk, start, data)
    }

    fn service_timing(&self, req: &DiskRequest) -> Option<InjectedService> {
        let mut m = self.model.lock().expect("latency model poisoned");
        let d = req.disk.0 as usize;
        let now = m.vnow[d];
        let (_, started) = m.array.submit(now, *req);
        let s = started.expect("latency disk driven one request at a time");
        let (done, next) = m.array.complete(s.completion_at, req.disk);
        debug_assert!(next.is_none(), "latency disk queue must stay empty");
        m.vnow[d] = s.completion_at;
        Some(InjectedService {
            breakdown: done.breakdown,
            sequential: done.sequential,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_device_round_trips_and_rejects_unwritten() {
        let mut dev = MemoryDevice::new(2, 8);
        dev.write_block(DiskId(1), BlockAddr(3), &[7u8; 8]).unwrap();
        let mut buf = [0u8; 8];
        dev.read_block(DiskId(1), BlockAddr(3), &mut buf).unwrap();
        assert_eq!(buf, [7u8; 8]);
        assert!(dev.read_block(DiskId(0), BlockAddr(0), &mut buf).is_err());
        assert!(dev.read_block(DiskId(1), BlockAddr(4), &mut buf).is_err());
    }
}
