//! The merge engine: the simulator's decision procedure driving real
//! block I/O.
//!
//! [`MergeEngine`] executes the paper's merge phase against a
//! [`BlockDevice`]: the same initial load, demand fetches, inter-run
//! prefetch operations, admission decisions, and AIMD depth adaptation
//! as [`pm_core::MergeSim`], but where the simulator advances a virtual
//! clock, the engine submits requests to per-disk I/O worker threads and
//! merges real records through the pm-extsort loser tree.
//!
//! ## Decision parity with the simulator
//!
//! Every decision the simulator makes at a depletion — whether to issue
//! a demand fetch, which runs to prefetch (including the RNG draws of
//! [`pm_core::PrefetchChoice::Random`] and the greedy shuffle), how much
//! the admission policy accepts, the AIMD depth update — is a pure
//! function of the depletion sequence: its inputs (per-run held counts,
//! free frames, fetch pointers, fetchable lists) change only at issue
//! and depletion time, never at completion time. The engine makes those
//! decisions with the identical code against the identical state,
//! consuming an identically-seeded RNG stream (the simulator's
//! `disk_seed`/`writer_seed` draws are mirrored before the first
//! decision). The block-request sequence per disk is therefore
//! *deterministic*: independent of the backend, the number of I/O
//! workers, and host timing. [`MergeEngine::predict`] replays the
//! engine's recorded depletion sequence through the simulator proper,
//! which must re-derive that exact request sequence — the foundation of
//! the sim-vs-engine cross-validation.
//!
//! Two caveats, both enforced by construction here: parity holds for
//! FIFO queueing (the engine services each disk one request at a time
//! in submission order) and for prefetch choices whose score the engine
//! can evaluate exactly ([`pm_core::PrefetchChoice::HeadProximity`]
//! scores against the cylinder of the *last submitted* block per disk,
//! which can diverge from the simulator's serviced-head position).

use std::collections::{BTreeMap, VecDeque};
use std::time::{Duration, Instant};

use pm_cache::{AdmissionPolicy, BlockCache, PrefetchGroup, RunId};
use pm_core::{
    DataLayout, MergeConfig, MergeReport, MergeSim, PmError, PrefetchChoice, PrefetchStrategy,
    RunLayout, SyncMode, TraceDepletion,
};
use pm_disk::{Cylinder, DiskId, DiskRequest, QueueDiscipline};
use pm_core::LoserTree;
use pm_extsort::Record;
use pm_metrics::{MetricsSink, NullMetrics};
use pm_sim::{SimDuration, SimRng, SimTime};
use pm_trace::{pack_tenant_tag, unpack_tag, unpack_tenant_tag, EventKind, RecordingSink, TraceEvent, TraceSink};

use crate::block::{block_bytes, decode_records, encode_records};
use crate::ioqueue::{IoCompletion, IoQueue, IoRequest, QueueOptions};
use crate::shared::SharedPort;

/// How to execute a merge: the scenario plus engine-only knobs.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// The scenario (strategy, admission, cache, disks, seed, …).
    /// `runs` and `run_blocks` are overridden by the actual data.
    pub merge: MergeConfig,
    /// Records per on-device block.
    pub records_per_block: u32,
    /// Per-disk I/O queue depth: how many requests may be outstanding
    /// on one disk before submission blocks (ring depth on io_uring).
    /// `0` negotiates the scenario's prefetch depth — the deepest
    /// backlog the merge's issue discipline creates per disk.
    pub queue_depth: usize,
    /// I/O worker threads (`0` = one per disk; more than one disk may
    /// share a worker when smaller, preserving per-disk FIFO order).
    pub jobs: usize,
    /// Wall-clock scale for injected latency (`0.01` replays the model
    /// at 100× speed; only meaningful with a latency backend).
    pub time_scale: f64,
}

impl ExecConfig {
    /// Engine defaults around a scenario: 40-record blocks, queue depth
    /// negotiated from the prefetch depth, one worker per disk,
    /// unscaled time.
    #[must_use]
    pub fn new(merge: MergeConfig) -> Self {
        ExecConfig {
            merge,
            records_per_block: 40,
            queue_depth: 0,
            jobs: 0,
            time_scale: 1.0,
        }
    }
}

/// What one engine execution measured.
#[derive(Debug, Clone)]
pub struct ExecReport {
    /// Wall-clock duration of the merge (initial load to last record).
    pub wall: Duration,
    /// Merge-thread time spent blocked on block arrivals.
    pub stall: Duration,
    /// Blocks merged (equals the scenario's total).
    pub blocks_merged: u64,
    /// Records merged.
    pub records_merged: u64,
    /// Demand-fetch operations (merge stalled on an empty run).
    pub demand_ops: u64,
    /// Demand operations degraded to a single-block fallback fetch.
    pub fallback_ops: u64,
    /// Demand operations whose full prefetch was admitted.
    pub full_prefetch_ops: u64,
    /// `full_prefetch_ops / demand_ops`, if any demand ops occurred.
    pub success_ratio: Option<f64>,
    /// Requests serviced per disk.
    pub per_disk_requests: Vec<u64>,
    /// Sequentially-streamed requests per disk (modeled when latency is
    /// injected, otherwise the submission hint).
    pub per_disk_sequential: Vec<u64>,
    /// Modeled busy time per disk (sum of injected service breakdowns,
    /// unscaled; zero without a latency backend).
    pub per_disk_modeled_busy: Vec<SimDuration>,
    /// The `time_scale` the run used.
    pub time_scale: f64,
}

/// Everything one engine execution produced.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// The merged (sorted) records.
    pub output: Vec<Record>,
    /// Measurements.
    pub report: ExecReport,
    /// The run-depletion sequence, in merge order (feed to
    /// [`MergeEngine::predict`]).
    pub depletion: Vec<RunId>,
    /// Per disk, the `(run, block)` requests in submission (= FIFO
    /// service) order.
    pub requests: Vec<Vec<(u32, u32)>>,
    /// The trace-event stream, sorted by timestamp (wall-clock
    /// nanoseconds since the engine epoch on the simulated-time axis).
    pub events: Vec<TraceEvent>,
}

/// The simulator's answer for an engine run's depletion sequence.
#[derive(Debug, Clone)]
pub struct EnginePrediction {
    /// The simulator's report for the replayed merge.
    pub report: MergeReport,
    /// Per disk, the `(run, block)` requests the simulator issued, in
    /// submission order.
    pub requests: Vec<Vec<(u32, u32)>>,
}

/// The disk-array seed a simulation of `cfg` derives from its master
/// seed (the first draw of the master stream). Seed a
/// [`crate::LatencyDevice`] with this to make its per-disk latency
/// streams bit-identical to the simulator's.
#[must_use]
pub fn disk_seed_for(cfg: &MergeConfig) -> u64 {
    SimRng::seed_from_u64(cfg.seed).next_u64()
}

/// A planned engine execution: scenario, data shape, and layout.
///
/// Construct once per data set, then [`MergeEngine::load`] a device and
/// [`MergeEngine::execute`] against it (repeatable: each execution is
/// independent and deterministic).
#[derive(Debug, Clone)]
pub struct MergeEngine {
    cfg: ExecConfig,
    merge: MergeConfig,
    layout: RunLayout,
    run_blocks: Vec<u32>,
    run_records: Vec<usize>,
}

impl MergeEngine {
    /// Plans an execution of `cfg.merge` over runs of the given record
    /// counts. `cfg.merge.runs` / `run_blocks` are replaced by the data's
    /// actual shape (mirroring [`MergeSim::with_run_lengths`]).
    ///
    /// # Errors
    ///
    /// [`PmError::Usage`] if the engine cannot execute the scenario
    /// (write modeling, zero records-per-block); [`PmError::Config`] if
    /// the adjusted configuration is invalid or the cache cannot hold
    /// the initial load.
    pub fn new(cfg: ExecConfig, run_records: Vec<usize>) -> Result<Self, PmError> {
        if cfg.merge.write.is_some() {
            return Err(PmError::Usage(
                "the execution engine does not model write traffic (set write: None)".into(),
            ));
        }
        if cfg.records_per_block == 0 {
            return Err(PmError::Usage("records-per-block must be positive".into()));
        }
        if cfg.time_scale <= 0.0 || cfg.time_scale.is_nan() {
            return Err(PmError::Usage("time-scale must be positive".into()));
        }
        if run_records.is_empty() || run_records.contains(&0) {
            return Err(PmError::Config(pm_core::ConfigError::ZeroParameter(
                "run lengths",
            )));
        }
        let rpb = cfg.records_per_block;
        let run_blocks: Vec<u32> = run_records
            .iter()
            .map(|&len| (len as u64).div_ceil(u64::from(rpb)) as u32)
            .collect();
        let mut merge = cfg.merge;
        merge.runs = run_blocks.len() as u32;
        merge.run_blocks = *run_blocks.iter().max().expect("non-empty");
        merge.validate()?;
        let depth = merge.strategy.depth();
        let need: u64 = run_blocks.iter().map(|&l| u64::from(depth.min(l))).sum();
        if u64::from(merge.cache_blocks) < need {
            return Err(PmError::Config(pm_core::ConfigError::CacheTooSmall {
                have: merge.cache_blocks,
                need: need as u32,
            }));
        }
        let layout = match merge.layout {
            DataLayout::Concatenated => {
                RunLayout::contiguous_lengths(&run_blocks, merge.disks, &merge.disk_spec.geometry)
            }
            DataLayout::Striped => {
                RunLayout::striped(&run_blocks, merge.disks, &merge.disk_spec.geometry)
            }
        };
        Ok(MergeEngine {
            cfg,
            merge,
            layout,
            run_blocks,
            run_records,
        })
    }

    /// The adjusted scenario this engine executes.
    #[must_use]
    pub fn merge_config(&self) -> &MergeConfig {
        &self.merge
    }

    /// The execution configuration this engine was planned with.
    #[must_use]
    pub fn exec_config(&self) -> &ExecConfig {
        &self.cfg
    }

    /// Per-run block counts.
    #[must_use]
    pub fn run_blocks(&self) -> &[u32] {
        &self.run_blocks
    }

    /// Bytes per on-device block.
    #[must_use]
    pub fn block_bytes(&self) -> usize {
        block_bytes(self.cfg.records_per_block)
    }

    /// The [`QueueOptions`] this plan negotiates for its I/O queue:
    /// the configured depth (or, at the `0` sentinel, the scenario's
    /// prefetch depth), worker count, and time scale.
    #[must_use]
    pub fn queue_options(&self) -> QueueOptions {
        QueueOptions {
            depth: if self.cfg.queue_depth == 0 {
                self.merge.strategy.depth().max(1) as usize
            } else {
                self.cfg.queue_depth
            },
            jobs: self.cfg.jobs,
            time_scale: self.cfg.time_scale,
        }
    }

    /// Writes `runs` into `queue` at the positions the layout assigns
    /// (the same placement the simulator assumes). Load before
    /// executing: queues treat writes as setup-only.
    ///
    /// # Errors
    ///
    /// [`PmError::Usage`] on a shape mismatch, [`PmError::Device`] on a
    /// failed write.
    pub fn load<Q: IoQueue + ?Sized>(
        &self,
        queue: &mut Q,
        runs: &[Vec<Record>],
    ) -> Result<(), PmError> {
        if runs.len() != self.run_records.len()
            || runs
                .iter()
                .zip(&self.run_records)
                .any(|(run, &len)| run.len() != len)
        {
            return Err(PmError::Usage(
                "run data does not match the planned run lengths".into(),
            ));
        }
        if queue.disks() < self.merge.disks as usize {
            return Err(PmError::Usage(format!(
                "device has {} disks, scenario needs {}",
                queue.disks(),
                self.merge.disks
            )));
        }
        if queue.block_bytes() != self.block_bytes() {
            return Err(PmError::Usage(format!(
                "device block size {} != planned {}",
                queue.block_bytes(),
                self.block_bytes()
            )));
        }
        let rpb = self.cfg.records_per_block as usize;
        let mut buf = vec![0u8; self.block_bytes()];
        for (r, run) in runs.iter().enumerate() {
            let run_id = RunId(r as u32);
            for (index, chunk) in run.chunks(rpb).enumerate() {
                let (disk, start) = self.layout.location(run_id, index as u32);
                encode_records(chunk, &mut buf);
                queue.write_block(disk, start, &buf).map_err(|e| {
                    PmError::device(
                        queue.backend(),
                        format!("write run {r} block {index} to disk {}", disk.0),
                        e,
                    )
                })?;
            }
        }
        Ok(())
    }

    /// Executes the merge against a loaded queue: opens it, drives the
    /// merge through batched submit/complete, and shuts it down.
    ///
    /// # Errors
    ///
    /// [`PmError::Device`] if a block read fails or the queue's
    /// transport dies.
    ///
    /// # Panics
    ///
    /// Panics if an internal invariant breaks (mirroring the
    /// simulator's own invariant assertions).
    pub fn execute(&self, queue: Box<dyn IoQueue>) -> Result<ExecOutcome, PmError> {
        self.execute_metered(queue, &NullMetrics)
    }

    /// [`MergeEngine::execute`] with a metrics sink: every block arrival
    /// records per-disk service time, queue wait (submit to service
    /// start) and bytes read into `metrics`; every submission batch and
    /// completion reap records its size, and per-disk in-flight depth is
    /// sampled at both transitions. With [`pm_metrics::NullMetrics`] the
    /// recording compiles away and the run is identical to
    /// [`MergeEngine::execute`].
    ///
    /// # Errors
    ///
    /// [`PmError::Device`] if a block read fails or the queue's
    /// transport dies.
    ///
    /// # Panics
    ///
    /// Panics if an internal invariant breaks (mirroring the
    /// simulator's own invariant assertions).
    pub fn execute_metered<M: MetricsSink>(
        &self,
        mut queue: Box<dyn IoQueue>,
        metrics: &M,
    ) -> Result<ExecOutcome, PmError> {
        if queue.disks() < self.merge.disks as usize {
            return Err(PmError::Usage(format!(
                "queue has {} disks, scenario needs {}",
                queue.disks(),
                self.merge.disks
            )));
        }
        let epoch = Instant::now();
        queue
            .open(epoch)
            .map_err(|e| PmError::device(queue.backend(), "opening the queue", e))?;
        let mut state = ExecState::new(self, queue, 0, epoch, metrics);
        state.run()
    }

    /// Executes the merge through a [`crate::SharedDeviceSet`] port:
    /// same decision procedure, but the disks are shared with other
    /// jobs and the set's [`pm_service::IoSched`] picks service order.
    /// Trace event tags carry the port's tenant id
    /// ([`pm_trace::pack_tenant_tag`]); run ids must fit
    /// [`pm_trace::TENANT_TAG_MAX_RUN`].
    ///
    /// # Errors
    ///
    /// [`PmError::Io`] if a block read fails or the set shuts down with
    /// requests outstanding.
    ///
    /// # Panics
    ///
    /// Panics if an internal invariant breaks (mirroring the
    /// simulator's own invariant assertions).
    pub fn execute_shared(&self, port: SharedPort) -> Result<ExecOutcome, PmError> {
        self.execute_shared_metered(port, &NullMetrics)
    }

    /// [`MergeEngine::execute_shared`] with a metrics sink: block
    /// arrivals additionally record per-tenant block counts and queue
    /// waits under the port's tenant id.
    ///
    /// # Errors
    ///
    /// [`PmError::Io`] if a block read fails or the set shuts down with
    /// requests outstanding.
    ///
    /// # Panics
    ///
    /// Panics if an internal invariant breaks (mirroring the
    /// simulator's own invariant assertions).
    pub fn execute_shared_metered<M: MetricsSink>(
        &self,
        port: SharedPort,
        metrics: &M,
    ) -> Result<ExecOutcome, PmError> {
        if self.merge.runs > pm_trace::TENANT_TAG_MAX_RUN {
            return Err(PmError::Usage(format!(
                "shared execution tags cap runs at {} (scenario has {})",
                pm_trace::TENANT_TAG_MAX_RUN,
                self.merge.runs
            )));
        }
        let tenant = port.tenant();
        let mut port: Box<dyn IoQueue> = Box::new(port);
        let epoch = Instant::now();
        port.open(epoch)
            .map_err(|e| PmError::device("shared", "opening the port", e))?;
        let mut state = ExecState::new(self, port, tenant, epoch, metrics);
        state.run()
    }

    /// Replays an engine run's depletion sequence through the
    /// discrete-event simulator, returning its report and request
    /// sequence for cross-validation against the engine's measurements.
    ///
    /// # Errors
    ///
    /// [`PmError::Config`] if the configuration fails simulator
    /// validation.
    ///
    /// # Panics
    ///
    /// Panics if `depletion` is not a consistent depletion sequence for
    /// this engine's runs.
    pub fn predict(&self, depletion: &[RunId]) -> Result<EnginePrediction, PmError> {
        let sim = MergeSim::with_run_lengths(self.merge, &self.run_blocks)
            .map_err(PmError::Config)?
            .replace_sink(RecordingSink::unbounded());
        let mut model = TraceDepletion::new(depletion.to_vec());
        let (report, sink) = sim.run_with_sink(&mut model);
        let mut requests = vec![Vec::new(); self.merge.disks as usize];
        for ev in sink.into_events() {
            if let EventKind::DiskIssue {
                disk,
                output: false,
                tag,
                ..
            } = ev.kind
            {
                requests[disk as usize].push(unpack_tag(tag));
            }
        }
        Ok(EnginePrediction { report, requests })
    }
}

#[derive(Debug, Clone, Copy)]
struct RunState {
    total: u32,
    next_fetch: u32,
    depleted: u32,
}

enum Gate {
    SyncOp { remaining: u32 },
    Block { run: RunId },
}

const DEAD: usize = usize::MAX;

struct ExecState<'a, M: MetricsSink> {
    plan: &'a MergeEngine,
    port: Box<dyn IoQueue>,
    /// The queue's backend label, for error context.
    backend: &'static str,
    /// Requests staged since the last flush: one decision point's issues
    /// go to the queue as a single batch.
    stage: Vec<IoRequest>,
    /// Completions reaped but not yet processed (batched reaping hands
    /// back more than one at a time).
    pending: VecDeque<IoCompletion>,
    /// Scratch buffer for [`IoQueue::complete`].
    reap_buf: Vec<IoCompletion>,
    /// In-flight requests per disk (queue-depth gauge).
    inflight: Vec<u64>,
    /// Tenant id stamped into trace tags (0 for dedicated runs).
    tenant: u16,
    metrics: &'a M,
    epoch: Instant,
    cache: BlockCache,
    rng: SimRng,
    runs: Vec<RunState>,
    fetchable: Vec<Vec<RunId>>,
    fetchable_pos: Vec<usize>,
    current_depth: u32,
    gate: Option<Gate>,
    /// Arrived, not-yet-consumed block payloads per run, keyed by block
    /// index (striped layouts deliver out of index order).
    store: Vec<BTreeMap<u32, Vec<Record>>>,
    /// Shadow head position per disk: the cylinder of the last
    /// *submitted* block (head-proximity scoring).
    head_cyl: Vec<Cylinder>,
    spans: Vec<u64>,
    sink: RecordingSink,
    stall: Duration,
    per_disk_requests: Vec<u64>,
    per_disk_sequential: Vec<u64>,
    per_disk_modeled_busy: Vec<SimDuration>,
    request_log: Vec<Vec<(u32, u32)>>,
    depletion: Vec<RunId>,
    blocks_merged: u64,
    demand_ops: u64,
    fallback_ops: u64,
    full_prefetch_ops: u64,
}

impl<'a, M: MetricsSink> ExecState<'a, M> {
    fn new(
        plan: &'a MergeEngine,
        port: Box<dyn IoQueue>,
        tenant: u16,
        epoch: Instant,
        metrics: &'a M,
    ) -> Self {
        let backend = port.backend();
        let merge = &plan.merge;
        let d = merge.disks as usize;
        let k = merge.runs as usize;
        // Mirror the simulator's seed derivation: the master stream
        // hands out the disk seed, then the writer seed, before any
        // decision draw.
        let mut rng = SimRng::seed_from_u64(merge.seed);
        let _disk_seed = rng.next_u64();
        let _writer_seed = rng.next_u64();
        let fetchable: Vec<Vec<RunId>> = if plan.layout.is_striped() {
            vec![Vec::new(); d]
        } else {
            (0..d)
                .map(|disk| plan.layout.runs_on_disk(DiskId(disk as u16)).to_vec())
                .collect()
        };
        let mut fetchable_pos = vec![DEAD; k];
        for list in &fetchable {
            for (i, r) in list.iter().enumerate() {
                fetchable_pos[r.0 as usize] = i;
            }
        }
        ExecState {
            plan,
            port,
            backend,
            stage: Vec::new(),
            pending: VecDeque::new(),
            reap_buf: Vec::new(),
            inflight: vec![0; d],
            tenant,
            metrics,
            epoch,
            cache: BlockCache::new(merge.cache_blocks, merge.runs),
            rng,
            runs: plan
                .run_blocks
                .iter()
                .map(|&total| RunState {
                    total,
                    next_fetch: 0,
                    depleted: 0,
                })
                .collect(),
            fetchable,
            fetchable_pos,
            current_depth: merge.strategy.depth(),
            gate: None,
            store: vec![BTreeMap::new(); k],
            head_cyl: vec![Cylinder(0); d],
            spans: vec![0; d],
            sink: RecordingSink::unbounded(),
            stall: Duration::ZERO,
            per_disk_requests: vec![0; d],
            per_disk_sequential: vec![0; d],
            per_disk_modeled_busy: vec![SimDuration::ZERO; d],
            request_log: vec![Vec::new(); d],
            depletion: Vec::with_capacity(plan.layout.total_blocks() as usize),
            blocks_merged: 0,
            demand_ops: 0,
            fallback_ops: 0,
            full_prefetch_ops: 0,
        }
    }

    fn now(&self) -> SimTime {
        SimTime::ZERO + SimDuration::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    fn run(&mut self) -> Result<ExecOutcome, PmError> {
        let merge = &self.plan.merge;
        let k = merge.runs as usize;
        self.initial_load()?;

        // Build the loser tree from every run's leading block.
        let mut cursors: Vec<std::vec::IntoIter<Record>> = Vec::with_capacity(k);
        for r in 0..k {
            cursors.push(self.take_block(RunId(r as u32))?.into_iter());
        }
        let heads: Vec<Option<Record>> = cursors.iter_mut().map(Iterator::next).collect();
        let mut tree = LoserTree::new(heads);

        let total_records: usize = self.plan.run_records.iter().sum();
        let mut output = Vec::with_capacity(total_records);
        while let Some((src, _)) = tree.winner() {
            let next = match cursors[src].next() {
                Some(rec) => Some(rec),
                None => match self.advance_run(RunId(src as u32))? {
                    Some(block) => {
                        cursors[src] = block.into_iter();
                        cursors[src].next()
                    }
                    None => None,
                },
            };
            let (_, rec) = tree.pop_and_replace(next).expect("winner exists");
            output.push(rec);
        }
        let wall = self.epoch.elapsed();

        assert_eq!(
            self.blocks_merged,
            self.plan.layout.total_blocks(),
            "merge ended early"
        );
        assert_eq!(self.cache.total_reserved(), 0, "blocks left in flight");
        assert_eq!(self.cache.total_resident(), 0, "blocks left undepleted");
        assert_eq!(output.len(), total_records);

        self.port
            .shutdown()
            .map_err(|e| PmError::device(self.backend, "shutting down the queue", e))?;
        let mut events = std::mem::replace(&mut self.sink, RecordingSink::unbounded()).into_events();
        events.sort_by_key(|e| e.at);
        let report = ExecReport {
            wall,
            stall: self.stall,
            blocks_merged: self.blocks_merged,
            records_merged: output.len() as u64,
            demand_ops: self.demand_ops,
            fallback_ops: self.fallback_ops,
            full_prefetch_ops: self.full_prefetch_ops,
            success_ratio: if self.demand_ops == 0 {
                None
            } else {
                Some(self.full_prefetch_ops as f64 / self.demand_ops as f64)
            },
            per_disk_requests: std::mem::take(&mut self.per_disk_requests),
            per_disk_sequential: std::mem::take(&mut self.per_disk_sequential),
            per_disk_modeled_busy: std::mem::take(&mut self.per_disk_modeled_busy),
            time_scale: self.plan.cfg.time_scale,
        };
        Ok(ExecOutcome {
            output,
            report,
            depletion: std::mem::take(&mut self.depletion),
            requests: std::mem::take(&mut self.request_log),
            events,
        })
    }

    /// Issues the initial load and waits out the startup gate
    /// (unsynchronized: every run has a resident block; synchronized:
    /// every initial block arrived).
    fn initial_load(&mut self) -> Result<(), PmError> {
        let merge = &self.plan.merge;
        let depth = merge.strategy.depth();
        let mut issued: u64 = 0;
        for r in 0..merge.runs {
            let run = RunId(r);
            let batch = depth.min(self.runs[r as usize].total);
            self.cache.reserve(run, batch);
            self.submit_blocks(run, 0, batch);
            issued += u64::from(batch);
        }
        self.flush_submissions()?;
        match merge.sync {
            SyncMode::Synchronized => {
                for _ in 0..issued {
                    self.await_arrival()?;
                }
            }
            SyncMode::Unsynchronized => {
                let mut first_missing = merge.runs;
                while first_missing > 0 {
                    let run = self.await_arrival()?;
                    if self.cache.resident(run) == 1 {
                        first_missing -= 1;
                    }
                }
            }
        }
        Ok(())
    }

    /// The leading block of `j` was fully consumed: deplete it, issue
    /// I/O per the paper's pseudocode, wait out the gate, and hand back
    /// the run's next block (`None` once the run is exhausted).
    fn advance_run(&mut self, j: RunId) -> Result<Option<Vec<Record>>, PmError> {
        let now = self.now();
        self.sink.emit(TraceEvent {
            at: now,
            kind: EventKind::CpuConsume {
                run: j.0,
                block: self.runs[j.0 as usize].depleted,
            },
        });
        self.cache.deplete_traced(j, now, &mut self.sink);
        self.depletion.push(j);
        let progress = &mut self.runs[j.0 as usize];
        progress.depleted += 1;
        self.blocks_merged += 1;
        let depleted = progress.depleted;
        let total = progress.total;
        if depleted == total {
            self.sink.emit(TraceEvent {
                at: now,
                kind: EventKind::RunExhausted { run: j.0 },
            });
            return Ok(None);
        }
        if self.cache.held(j) == 0 {
            debug_assert!(self.runs[j.0 as usize].next_fetch < total);
            self.issue_demand(j)?;
        } else if self.cache.resident(j) == 0 {
            debug_assert_eq!(self.plan.merge.sync, SyncMode::Unsynchronized);
            self.gate = Some(Gate::Block { run: j });
        }
        self.wait_gate(j)?;
        Ok(Some(self.take_block(j)?))
    }

    /// Mirrors the simulator's demand-fetch issue, including the gate.
    fn issue_demand(&mut self, j: RunId) -> Result<(), PmError> {
        self.demand_ops += 1;
        let depth = self.current_depth;
        let progress = self.runs[j.0 as usize];
        let demand_blocks = depth.min(progress.total - progress.next_fetch);
        debug_assert!(demand_blocks >= 1);
        let demand_index = progress.next_fetch;
        debug_assert_eq!(demand_index, progress.depleted);
        self.sink.emit(TraceEvent {
            at: self.now(),
            kind: EventKind::DemandMiss {
                run: j.0,
                block: demand_index,
                free: self.cache.free(),
            },
        });
        let issued_total = if self.plan.merge.strategy.is_inter_run() {
            self.issue_inter_run(j, demand_blocks)
        } else {
            self.cache.reserve(j, demand_blocks);
            self.submit_blocks(j, demand_index, demand_blocks);
            demand_blocks
        };
        self.gate = Some(match self.plan.merge.sync {
            SyncMode::Synchronized => Gate::SyncOp {
                remaining: issued_total,
            },
            SyncMode::Unsynchronized => Gate::Block { run: j },
        });
        self.flush_submissions()
    }

    /// Hands everything staged since the last flush to the queue as one
    /// batch (one decision point = one submission batch), recording
    /// per-disk batch sizes and in-flight depth when metered.
    fn flush_submissions(&mut self) -> Result<(), PmError> {
        if self.stage.is_empty() {
            return Ok(());
        }
        for r in &self.stage {
            self.inflight[r.req.disk.0 as usize] += 1;
        }
        if M::ENABLED {
            let mut counts = vec![0u64; self.inflight.len()];
            for r in &self.stage {
                counts[r.req.disk.0 as usize] += 1;
            }
            for (d, &n) in counts.iter().enumerate() {
                if n > 0 {
                    self.metrics.io_submit_batch(d, n);
                    self.metrics.disk_queue_depth(d, self.inflight[d] as f64);
                }
            }
        }
        let n = self.stage.len();
        self.port.submit(&self.stage).map_err(|e| {
            PmError::device(self.backend, format!("submitting a batch of {n} reads"), e)
        })?;
        self.stage.clear();
        Ok(())
    }

    /// Mirrors the simulator's combined inter-run operation: the demand
    /// group plus one chosen run per other disk, admitted against the
    /// cache, with the AIMD depth update and single-block fallback.
    fn issue_inter_run(&mut self, j: RunId, demand_blocks: u32) -> u32 {
        let merge = self.plan.merge;
        let depth = self.current_depth;
        let demand_disk = self.plan.layout.placement(j).disk;
        let mut groups: Vec<PrefetchGroup> = Vec::with_capacity(merge.disks as usize + 1);
        let mut candidate_buf: Vec<RunId> = Vec::new();
        groups.push(PrefetchGroup {
            run: j,
            blocks: demand_blocks,
        });
        for d in 0..merge.disks as u16 {
            let disk = DiskId(d);
            if disk == demand_disk {
                continue;
            }
            let candidates: &[RunId] = match merge.per_run_cap {
                None => &self.fetchable[d as usize],
                Some(cap) => {
                    candidate_buf.clear();
                    candidate_buf.extend(
                        self.fetchable[d as usize]
                            .iter()
                            .copied()
                            .filter(|&r| self.cache.held(r) < cap),
                    );
                    &candidate_buf
                }
            };
            if candidates.is_empty() {
                continue;
            }
            let cache = &self.cache;
            let layout = &self.plan.layout;
            let runs = &self.runs;
            let head = self.head_cyl[d as usize];
            let run = merge
                .prefetch_choice
                .pick(&mut self.rng, candidates, |r| match merge.prefetch_choice {
                    PrefetchChoice::Random => 0,
                    PrefetchChoice::LeastHeld => u64::from(cache.held(r)),
                    PrefetchChoice::HeadProximity => {
                        let next = runs[r.0 as usize].next_fetch;
                        let cyl = merge
                            .disk_spec
                            .geometry
                            .cylinder_of(layout.block_addr(r, next));
                        u64::from(cyl.distance(head))
                    }
                });
            let p = self.runs[run.0 as usize];
            let blocks = depth.min(p.total - p.next_fetch);
            debug_assert!(blocks >= 1);
            groups.push(PrefetchGroup { run, blocks });
        }
        self.sink.emit(TraceEvent {
            at: self.now(),
            kind: EventKind::PrefetchBatch {
                groups: groups.len() as u32,
                blocks: groups.iter().map(|g| g.blocks).sum(),
                depth,
            },
        });
        if merge.admission == AdmissionPolicy::Greedy && groups.len() > 2 {
            self.rng.shuffle(&mut groups[1..]);
        }
        let mut admitted: Vec<PrefetchGroup> = Vec::with_capacity(groups.len());
        let now = self.now();
        let full = merge.admission.admit_into_traced(
            &mut self.cache,
            &groups,
            &mut admitted,
            now,
            &mut self.sink,
        );
        if full {
            self.full_prefetch_ops += 1;
        }
        if let PrefetchStrategy::InterRunAdaptive { n_min, n_max } = merge.strategy {
            self.current_depth = if full {
                (self.current_depth + 1).min(n_max)
            } else {
                (self.current_depth / 2).max(n_min)
            };
        }
        if admitted.is_empty() {
            self.fallback_ops += 1;
            self.cache.reserve(j, 1);
            let start = self.runs[j.0 as usize].next_fetch;
            self.submit_blocks(j, start, 1);
            1
        } else {
            let mut issued = 0;
            for g in &admitted {
                let start = self.runs[g.run.0 as usize].next_fetch;
                self.submit_blocks(g.run, start, g.blocks);
                issued += g.blocks;
            }
            issued
        }
    }

    /// Stages `count` single-block requests for the next flush and
    /// advances the fetch pointer (frames must already be reserved).
    fn submit_blocks(&mut self, run: RunId, start_index: u32, count: u32) {
        debug_assert!(count >= 1);
        let stride = self.plan.layout.same_disk_stride();
        for i in 0..count {
            let index = start_index + i;
            let (disk, start) = self.plan.layout.location(run, index);
            let d = disk.0 as usize;
            let tag = pack_tenant_tag(self.tenant, run.0, index);
            let span = self.spans[d];
            self.spans[d] += 1;
            self.sink.emit(TraceEvent {
                at: self.now(),
                kind: EventKind::DiskIssue {
                    disk: disk.0,
                    output: false,
                    tag,
                    span,
                },
            });
            self.per_disk_requests[d] += 1;
            self.request_log[d].push((run.0, index));
            self.head_cyl[d] = self.plan.merge.disk_spec.geometry.cylinder_of(start);
            self.stage.push(IoRequest {
                req: DiskRequest {
                    disk,
                    start,
                    len: 1,
                    sequential_hint: i >= stride,
                    tag,
                },
                span,
                submitted: Instant::now(),
            });
        }
        let progress = &mut self.runs[run.0 as usize];
        progress.next_fetch += count;
        debug_assert!(progress.next_fetch <= progress.total);
        if progress.next_fetch == progress.total {
            if let Some(home) = self.plan.layout.home_disk(run) {
                self.remove_fetchable(run, home);
            }
        }
    }

    fn remove_fetchable(&mut self, run: RunId, disk: DiskId) {
        let list = &mut self.fetchable[disk.0 as usize];
        let pos = self.fetchable_pos[run.0 as usize];
        debug_assert_ne!(pos, DEAD);
        list.swap_remove(pos);
        if let Some(&moved) = list.get(pos) {
            self.fetchable_pos[moved.0 as usize] = pos;
        }
        self.fetchable_pos[run.0 as usize] = DEAD;
    }

    /// Waits out the gate the last issue set (if any), then returns once
    /// the arrivals the simulator would wait for have been processed.
    fn wait_gate(&mut self, j: RunId) -> Result<(), PmError> {
        match self.gate.take() {
            None => {}
            Some(Gate::SyncOp { remaining }) => {
                for _ in 0..remaining {
                    self.await_arrival()?;
                }
            }
            Some(Gate::Block { run }) => {
                while self.await_arrival()? != run {}
            }
        }
        let _ = j;
        Ok(())
    }

    /// Hands back run `j`'s next block, waiting for its arrival if
    /// needed (striped layouts deliver a run's blocks out of index
    /// order, so this can wait past the gate).
    fn take_block(&mut self, j: RunId) -> Result<Vec<Record>, PmError> {
        let index = self.runs[j.0 as usize].depleted;
        loop {
            if let Some(block) = self.store[j.0 as usize].remove(&index) {
                return Ok(block);
            }
            self.await_arrival()?;
        }
    }

    /// Takes the next completion (reaping a batch from the queue when
    /// none is pending) and processes it; returns the run whose block
    /// arrived.
    fn await_arrival(&mut self) -> Result<RunId, PmError> {
        let completion = match self.pending.pop_front() {
            Some(c) => c,
            None => {
                let waiting = Instant::now();
                debug_assert!(self.reap_buf.is_empty());
                let n = self
                    .port
                    .complete(&mut self.reap_buf, 1)
                    .map_err(|e| PmError::device(self.backend, "waiting for completions", e))?;
                self.stall += waiting.elapsed();
                if M::ENABLED {
                    self.metrics.io_reap_batch(n as u64);
                }
                self.pending.extend(self.reap_buf.drain(..));
                self.pending.pop_front().expect("complete(_, 1) returned 0")
            }
        };
        let (_, run, index) = unpack_tenant_tag(completion.tag);
        let d = completion.disk as usize;
        self.inflight[d] = self.inflight[d].saturating_sub(1);
        if M::ENABLED {
            self.metrics.disk_queue_depth(d, self.inflight[d] as f64);
        }
        let data = completion
            .data
            .map_err(|e| PmError::device(self.backend, format!("read run {run} block {index}"), e))?;
        let started = SimTime::ZERO + SimDuration::from_nanos(completion.started_ns);
        let finished = SimTime::ZERO + SimDuration::from_nanos(completion.finished_ns);
        if M::ENABLED {
            const NANOS_PER_SEC: f64 = 1e9;
            let wait = completion.started_ns.saturating_sub(completion.submitted_ns) as f64
                / NANOS_PER_SEC;
            let service = completion.finished_ns.saturating_sub(completion.started_ns) as f64
                / NANOS_PER_SEC;
            self.metrics
                .disk_io(d, self.plan.block_bytes() as u64, wait, service);
            // Dedicated runs carry tenant 0; a sink built without tenants
            // drops these, a shared run's sink attributes them.
            self.metrics.tenant_blocks(self.tenant as usize, 1);
            self.metrics.tenant_wait(self.tenant as usize, wait);
        }
        let sequential = match completion.injected {
            Some(inj) => {
                self.per_disk_modeled_busy[d] += inj.breakdown.total();
                if !inj.sequential {
                    // Retroactive, like the simulator: positioning ends
                    // seek+latency (scaled) after service start.
                    let positioning = inj.breakdown.seek + inj.breakdown.latency;
                    let scaled = SimDuration::from_nanos(
                        (positioning.as_nanos() as f64 * self.plan.cfg.time_scale).round() as u64,
                    );
                    self.sink.emit(TraceEvent {
                        at: started + scaled,
                        kind: EventKind::DiskSeekDone {
                            disk: completion.disk,
                            output: false,
                            tag: completion.tag,
                            span: completion.span,
                            started,
                        },
                    });
                }
                inj.sequential
            }
            None => completion.hint,
        };
        if sequential {
            self.per_disk_sequential[d] += 1;
        }
        self.sink.emit(TraceEvent {
            at: finished,
            kind: EventKind::DiskTransferDone {
                disk: completion.disk,
                output: false,
                tag: completion.tag,
                span: completion.span,
                started,
                sequential,
            },
        });
        let count = self.records_in_block(run, index);
        let records = decode_records(&data, count);
        self.cache.block_arrived(RunId(run));
        self.store[run as usize].insert(index, records);
        Ok(RunId(run))
    }

    fn records_in_block(&self, run: u32, index: u32) -> usize {
        let rpb = self.plan.cfg.records_per_block as usize;
        let total = self.plan.run_records[run as usize];
        let start = index as usize * rpb;
        debug_assert!(start < total);
        rpb.min(total - start)
    }
}

// The latency model must see FIFO service order for sim parity; the
// engine guarantees it structurally, so any discipline is *executable*,
// but only FIFO predictions are meaningful.
#[allow(dead_code)]
fn _discipline_note(_: QueueDiscipline) {}
