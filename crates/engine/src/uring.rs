//! io_uring [`IoQueue`] backend (feature `uring`, Linux only).
//!
//! One ring per disk file, opened `O_DIRECT` with registered
//! page-aligned buffers — one buffer slot per queue-depth entry, so the
//! free-slot list is the depth bound. Reads are `IORING_OP_READ_FIXED`
//! into the slot's buffer; completions are reaped in batches from the
//! CQ rings, blocking on `poll(2)` over the ring fds when the engine
//! asks for more than is ready. Unlike the threaded backends, a disk's
//! completions may arrive out of submission order at depth > 1 — the
//! engine's merge decisions are invariant to that (see the
//! [`crate::ioqueue`] contract).
//!
//! The raw ABI (setup/enter/register syscalls, ring memory maps, SQE и
//! CQE layouts) is used directly so no external crate is needed; the
//! layouts are the stable io_uring v1 ABI present since Linux 5.1.

use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::collections::VecDeque;
use std::ffi::c_void;
use std::io;
use std::os::unix::io::AsRawFd;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Instant;

use pm_core::{ConfigError, PmError};
use pm_disk::{BlockAddr, DiskId};

use crate::device::DIRECT_ALIGN;
use crate::ioqueue::{IoCompletion, IoQueue, IoRequest};
use crate::workers::since;

const SYS_IO_URING_SETUP: i64 = 425;
const SYS_IO_URING_ENTER: i64 = 426;
const SYS_IO_URING_REGISTER: i64 = 427;

const IORING_ENTER_GETEVENTS: u32 = 1;
const IORING_REGISTER_BUFFERS: u32 = 0;
const IORING_OP_READ_FIXED: u8 = 4;
const IORING_FEAT_SINGLE_MMAP: u32 = 0x1;

const IORING_OFF_SQ_RING: i64 = 0;
const IORING_OFF_CQ_RING: i64 = 0x0800_0000;
const IORING_OFF_SQES: i64 = 0x1000_0000;

const PROT_READ_WRITE: i32 = 0x3;
const MAP_SHARED_POPULATE: i32 = 0x8001;
const O_DIRECT: i32 = 0o040000;
const POLLIN: i16 = 0x1;

extern "C" {
    fn syscall(num: i64, ...) -> i64;
    fn mmap(addr: *mut c_void, len: usize, prot: i32, flags: i32, fd: i32, off: i64)
        -> *mut c_void;
    fn munmap(addr: *mut c_void, len: usize) -> i32;
    fn close(fd: i32) -> i32;
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
}

#[repr(C)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

#[repr(C)]
#[derive(Clone, Copy, Default)]
struct SqOffsets {
    head: u32,
    tail: u32,
    ring_mask: u32,
    ring_entries: u32,
    flags: u32,
    dropped: u32,
    array: u32,
    resv1: u32,
    user_addr: u64,
}

#[repr(C)]
#[derive(Clone, Copy, Default)]
struct CqOffsets {
    head: u32,
    tail: u32,
    ring_mask: u32,
    ring_entries: u32,
    overflow: u32,
    cqes: u32,
    flags: u32,
    resv1: u32,
    user_addr: u64,
}

#[repr(C)]
#[derive(Clone, Copy, Default)]
struct Params {
    sq_entries: u32,
    cq_entries: u32,
    flags: u32,
    sq_thread_cpu: u32,
    sq_thread_idle: u32,
    features: u32,
    wq_fd: u32,
    resv: [u32; 3],
    sq_off: SqOffsets,
    cq_off: CqOffsets,
}

#[repr(C)]
#[derive(Clone, Copy)]
struct Sqe {
    opcode: u8,
    flags: u8,
    ioprio: u16,
    fd: i32,
    off: u64,
    addr: u64,
    len: u32,
    rw_flags: u32,
    user_data: u64,
    buf_index: u16,
    personality: u16,
    splice_fd_in: i32,
    pad: [u64; 2],
}

#[repr(C)]
#[derive(Clone, Copy)]
struct Cqe {
    user_data: u64,
    res: i32,
    flags: u32,
}

#[repr(C)]
struct Iovec {
    iov_base: *mut c_void,
    iov_len: usize,
}

/// Whether this kernel can set up an io_uring instance (the runtime
/// probe behind the CLI's graceful fallback).
#[must_use]
pub fn uring_available() -> bool {
    let mut params = Params::default();
    let fd = unsafe {
        syscall(
            SYS_IO_URING_SETUP,
            2i64,
            std::ptr::addr_of_mut!(params) as i64,
        )
    };
    if fd < 0 {
        return false;
    }
    unsafe {
        close(fd as i32);
    }
    true
}

/// What one submitted request is waiting on: the echo fields for its
/// completion, keyed by the buffer slot the read lands in.
struct Slot {
    tag: u64,
    span: u64,
    hint: bool,
    disk: u16,
    submitted: Instant,
    started: Instant,
}

/// One disk's io_uring: ring fd, mapped SQ/CQ/SQE memory, the
/// registered buffer arena, and the slot bookkeeping.
struct Ring {
    fd: i32,
    read_file: std::fs::File,
    sq_ptr: *mut u8,
    sq_len: usize,
    cq_ptr: *mut u8,
    /// 0 when the kernel serves SQ and CQ from a single map.
    cq_len: usize,
    sqes: *mut Sqe,
    sqes_len: usize,
    sq_mask: u32,
    cq_mask: u32,
    sq_ktail: *const AtomicU32,
    sq_array: *mut u32,
    cq_khead: *const AtomicU32,
    cq_ktail: *const AtomicU32,
    cqes: *const Cqe,
    buf_base: *mut u8,
    buf_layout: Layout,
    block_bytes: usize,
    disk: u16,
    free: Vec<u16>,
    meta: Vec<Option<Slot>>,
    /// Slots filled into the SQ since the last `enter` (their `started`
    /// stamps land when the kernel takes them).
    pending_slots: Vec<u16>,
    sq_pending: u32,
    inflight: u32,
}

// The raw pointers reference process-wide ring maps owned by this Ring;
// the queue is driven from one thread at a time (`IoQueue` takes &mut).
#[allow(unsafe_code)]
unsafe impl Send for Ring {}

impl Ring {
    fn new(disk: u16, read_file: std::fs::File, depth: usize, block_bytes: usize) -> io::Result<Self> {
        let mut params = Params::default();
        let fd = unsafe {
            syscall(
                SYS_IO_URING_SETUP,
                depth as i64,
                std::ptr::addr_of_mut!(params) as i64,
            )
        };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let fd = fd as i32;
        let single = params.features & IORING_FEAT_SINGLE_MMAP != 0;
        let sq_ring_len =
            params.sq_off.array as usize + params.sq_entries as usize * size_of::<u32>();
        let cq_ring_len =
            params.cq_off.cqes as usize + params.cq_entries as usize * size_of::<Cqe>();
        let sq_len = if single { sq_ring_len.max(cq_ring_len) } else { sq_ring_len };
        let map = |len: usize, off: i64| -> io::Result<*mut u8> {
            let p = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ_WRITE,
                    MAP_SHARED_POPULATE,
                    fd,
                    off,
                )
            };
            if p as i64 == -1 {
                let e = io::Error::last_os_error();
                unsafe { close(fd) };
                return Err(e);
            }
            Ok(p.cast())
        };
        let sq_ptr = map(sq_len, IORING_OFF_SQ_RING)?;
        let (cq_ptr, cq_len) = if single {
            (sq_ptr, 0)
        } else {
            (map(cq_ring_len, IORING_OFF_CQ_RING)?, cq_ring_len)
        };
        let sqes_len = params.sq_entries as usize * size_of::<Sqe>();
        let sqes: *mut Sqe = map(sqes_len, IORING_OFF_SQES)?.cast();

        // One registered buffer per depth slot, page-aligned for
        // O_DIRECT.
        let buf_layout = Layout::from_size_align(block_bytes * depth, 4096)
            .map_err(|e| io::Error::other(format!("buffer layout: {e}")))?;
        let buf_base = unsafe { alloc_zeroed(buf_layout) };
        if buf_base.is_null() {
            unsafe { close(fd) };
            return Err(io::Error::other("registered-buffer allocation failed"));
        }
        let iovecs: Vec<Iovec> = (0..depth)
            .map(|s| Iovec {
                iov_base: unsafe { buf_base.add(s * block_bytes) }.cast(),
                iov_len: block_bytes,
            })
            .collect();
        let rc = unsafe {
            syscall(
                SYS_IO_URING_REGISTER,
                i64::from(fd),
                i64::from(IORING_REGISTER_BUFFERS),
                iovecs.as_ptr() as i64,
                depth as i64,
            )
        };
        if rc < 0 {
            let e = io::Error::last_os_error();
            unsafe {
                close(fd);
                dealloc(buf_base, buf_layout);
            }
            return Err(e);
        }

        let sq = params.sq_off;
        let cq = params.cq_off;
        Ok(Ring {
            fd,
            read_file,
            sq_ptr,
            sq_len,
            cq_ptr,
            cq_len,
            sqes,
            sqes_len,
            sq_mask: unsafe { *sq_ptr.add(sq.ring_mask as usize).cast::<u32>() },
            cq_mask: unsafe { *cq_ptr.add(cq.ring_mask as usize).cast::<u32>() },
            sq_ktail: unsafe { sq_ptr.add(sq.tail as usize).cast() },
            sq_array: unsafe { sq_ptr.add(sq.array as usize).cast() },
            cq_khead: unsafe { cq_ptr.add(cq.head as usize).cast() },
            cq_ktail: unsafe { cq_ptr.add(cq.tail as usize).cast() },
            cqes: unsafe { cq_ptr.add(cq.cqes as usize).cast() },
            buf_base,
            buf_layout,
            block_bytes,
            disk,
            free: (0..depth as u16).rev().collect(),
            meta: (0..depth).map(|_| None).collect(),
            pending_slots: Vec::with_capacity(depth),
            sq_pending: 0,
            inflight: 0,
        })
    }

    /// Fills the next SQE with a READ_FIXED into `slot`'s buffer. The
    /// caller guarantees a free SQ entry (slots bound outstanding +
    /// pending to the ring size).
    fn push_sqe(&mut self, slot: u16, req: &IoRequest) {
        let tail = unsafe { (*self.sq_ktail).load(Ordering::Relaxed) };
        let idx = (tail & self.sq_mask) as usize;
        unsafe {
            *self.sqes.add(idx) = Sqe {
                opcode: IORING_OP_READ_FIXED,
                flags: 0,
                ioprio: 0,
                fd: self.read_file.as_raw_fd(),
                off: req.req.start.0 * self.block_bytes as u64,
                addr: self.buf_base.add(slot as usize * self.block_bytes) as u64,
                len: self.block_bytes as u32,
                rw_flags: 0,
                user_data: u64::from(slot),
                buf_index: slot,
                personality: 0,
                splice_fd_in: 0,
                pad: [0; 2],
            };
            *self.sq_array.add(idx) = idx as u32;
            (*self.sq_ktail).store(tail.wrapping_add(1), Ordering::Release);
        }
        self.meta[slot as usize] = Some(Slot {
            tag: req.req.tag,
            span: req.span,
            hint: req.req.sequential_hint,
            disk: self.disk,
            submitted: req.submitted,
            started: req.submitted,
        });
        self.pending_slots.push(slot);
        self.sq_pending += 1;
        self.inflight += 1;
    }

    /// Hands pending SQEs to the kernel; with `min_complete > 0` also
    /// waits until that many completions are posted.
    fn enter(&mut self, min_complete: u32) -> io::Result<()> {
        let to_submit = self.sq_pending;
        if to_submit == 0 && min_complete == 0 {
            return Ok(());
        }
        let flags = if min_complete > 0 { IORING_ENTER_GETEVENTS } else { 0 };
        loop {
            let rc = unsafe {
                syscall(
                    SYS_IO_URING_ENTER,
                    i64::from(self.fd),
                    i64::from(to_submit),
                    i64::from(min_complete),
                    i64::from(flags),
                    0i64,
                    0i64,
                )
            };
            if rc >= 0 {
                if (rc as u32) < to_submit {
                    return Err(io::Error::other(format!(
                        "ring accepted {rc} of {to_submit} submissions"
                    )));
                }
                let started = Instant::now();
                for &slot in &self.pending_slots {
                    if let Some(meta) = self.meta[slot as usize].as_mut() {
                        meta.started = started;
                    }
                }
                self.pending_slots.clear();
                self.sq_pending = 0;
                return Ok(());
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    /// Drains every posted CQE into `ready`; returns how many.
    fn drain_cq(&mut self, epoch: Instant, ready: &mut VecDeque<IoCompletion>) -> usize {
        let mut n = 0;
        loop {
            let head = unsafe { (*self.cq_khead).load(Ordering::Relaxed) };
            let tail = unsafe { (*self.cq_ktail).load(Ordering::Acquire) };
            if head == tail {
                return n;
            }
            let cqe = unsafe { *self.cqes.add((head & self.cq_mask) as usize) };
            unsafe {
                (*self.cq_khead).store(head.wrapping_add(1), Ordering::Release);
            }
            let slot = cqe.user_data as u16;
            let meta = self.meta[slot as usize]
                .take()
                .expect("completion for an empty slot");
            let data = if cqe.res < 0 {
                Err(io::Error::from_raw_os_error(-cqe.res))
            } else if cqe.res as usize != self.block_bytes {
                Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("short read: {} of {} bytes", cqe.res, self.block_bytes),
                ))
            } else {
                let mut block = vec![0u8; self.block_bytes];
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        self.buf_base.add(slot as usize * self.block_bytes),
                        block.as_mut_ptr(),
                        self.block_bytes,
                    );
                }
                Ok(block)
            };
            let finished = Instant::now();
            ready.push_back(IoCompletion {
                disk: meta.disk,
                tag: meta.tag,
                span: meta.span,
                hint: meta.hint,
                injected: None,
                submitted_ns: since(epoch, meta.submitted),
                started_ns: since(epoch, meta.started),
                finished_ns: since(epoch, finished),
                data,
            });
            self.free.push(slot);
            self.inflight -= 1;
            n += 1;
        }
    }
}

impl Drop for Ring {
    fn drop(&mut self) {
        unsafe {
            munmap(self.sqes.cast(), self.sqes_len);
            if self.cq_len > 0 {
                munmap(self.cq_ptr.cast(), self.cq_len);
            }
            munmap(self.sq_ptr.cast(), self.sq_len);
            close(self.fd);
            // The kernel pins registered-buffer pages independently of
            // this mapping; freeing after the ring is gone is safe even
            // if requests were abandoned in flight.
            dealloc(self.buf_base, self.buf_layout);
        }
    }
}

/// The io_uring [`IoQueue`]: one `O_DIRECT` ring per disk file with
/// registered buffers, completing out of order at depth > 1.
pub struct UringQueue {
    block_bytes: usize,
    depth: usize,
    paths: Vec<PathBuf>,
    write_files: Vec<std::fs::File>,
    rings: Vec<Ring>,
    ready: VecDeque<IoCompletion>,
    epoch: Instant,
    opened: bool,
}

impl UringQueue {
    /// Creates (truncating) one backing file per disk under `dir` and
    /// plans rings of `depth` entries per disk (built at open).
    ///
    /// # Errors
    ///
    /// [`ConfigError::BlockAlignment`] when `block_bytes` is not a
    /// positive multiple of [`DIRECT_ALIGN`]; [`PmError::Device`] on
    /// any file-creation failure.
    pub fn create(
        dir: &Path,
        disks: usize,
        block_bytes: usize,
        depth: usize,
    ) -> Result<Self, PmError> {
        if block_bytes == 0 || !block_bytes.is_multiple_of(DIRECT_ALIGN) {
            return Err(ConfigError::BlockAlignment {
                block_bytes,
                required: DIRECT_ALIGN,
            }
            .into());
        }
        std::fs::create_dir_all(dir).map_err(|e| {
            PmError::device("uring", format!("creating {}", dir.display()), e)
        })?;
        let mut paths = Vec::with_capacity(disks);
        let mut write_files = Vec::with_capacity(disks);
        for d in 0..disks {
            let path = dir.join(format!("disk-{d:02}.bin"));
            let file = std::fs::File::options()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(&path)
                .map_err(|e| {
                    PmError::device("uring", format!("creating {}", path.display()), e)
                })?;
            paths.push(path);
            write_files.push(file);
        }
        Ok(UringQueue {
            block_bytes,
            depth: depth.max(1),
            paths,
            write_files,
            rings: Vec::new(),
            ready: VecDeque::new(),
            epoch: Instant::now(),
            opened: false,
        })
    }
}

impl IoQueue for UringQueue {
    fn backend(&self) -> &'static str {
        "uring"
    }

    fn block_bytes(&self) -> usize {
        self.block_bytes
    }

    fn disks(&self) -> usize {
        self.paths.len()
    }

    fn depth(&self) -> usize {
        self.depth
    }

    fn write_block(&mut self, disk: DiskId, start: BlockAddr, data: &[u8]) -> io::Result<()> {
        use std::os::unix::fs::FileExt;
        if self.opened {
            return Err(io::Error::other(
                "writes are setup-only: load the queue before open()",
            ));
        }
        let file = self
            .write_files
            .get(disk.0 as usize)
            .ok_or_else(|| io::Error::other(format!("no such disk {}", disk.0)))?;
        file.write_all_at(data, start.0 * self.block_bytes as u64)
    }

    fn open(&mut self, epoch: Instant) -> io::Result<()> {
        use std::os::unix::fs::OpenOptionsExt;
        if self.opened {
            return Ok(());
        }
        // Direct reads bypass the page cache; flush the buffered loads
        // to the backing store first.
        for file in &self.write_files {
            file.sync_data()?;
        }
        let mut rings = Vec::with_capacity(self.paths.len());
        for (d, path) in self.paths.iter().enumerate() {
            let read_file = std::fs::File::options()
                .read(true)
                .custom_flags(O_DIRECT)
                .open(path)?;
            rings.push(Ring::new(d as u16, read_file, self.depth, self.block_bytes)?);
        }
        self.rings = rings;
        self.epoch = epoch;
        self.opened = true;
        Ok(())
    }

    fn submit(&mut self, reqs: &[IoRequest]) -> io::Result<()> {
        if !self.opened {
            return Err(io::Error::other("queue not opened"));
        }
        let epoch = self.epoch;
        for req in reqs {
            let d = req.req.disk.0 as usize;
            let ring = self
                .rings
                .get_mut(d)
                .ok_or_else(|| io::Error::other(format!("no such disk {d}")))?;
            // Depth backpressure: with every buffer slot in flight,
            // submit what's pending and wait for one completion.
            while ring.free.is_empty() {
                ring.enter(1)?;
                ring.drain_cq(epoch, &mut self.ready);
            }
            let slot = ring.free.pop().expect("free slot");
            ring.push_sqe(slot, req);
        }
        for ring in &mut self.rings {
            ring.enter(0)?;
        }
        Ok(())
    }

    fn complete(&mut self, out: &mut Vec<IoCompletion>, min_wait: usize) -> io::Result<usize> {
        if !self.opened {
            return Err(io::Error::other("queue not opened"));
        }
        let epoch = self.epoch;
        for ring in &mut self.rings {
            ring.drain_cq(epoch, &mut self.ready);
        }
        while self.ready.len() < min_wait {
            let mut fds: Vec<PollFd> = self
                .rings
                .iter()
                .filter(|r| r.inflight > 0)
                .map(|r| PollFd {
                    fd: r.fd,
                    events: POLLIN,
                    revents: 0,
                })
                .collect();
            if fds.is_empty() {
                return Err(io::Error::other(format!(
                    "waiting for {min_wait} completions with only {} in flight",
                    self.ready.len()
                )));
            }
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, -1) };
            if rc < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            }
            for ring in &mut self.rings {
                ring.drain_cq(epoch, &mut self.ready);
            }
        }
        let n = self.ready.len();
        out.extend(self.ready.drain(..));
        Ok(n)
    }

    fn shutdown(&mut self) -> io::Result<()> {
        self.rings.clear();
        self.ready.clear();
        self.opened = false;
        Ok(())
    }
}
