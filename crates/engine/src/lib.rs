//! pm-engine — real-I/O execution of the paper's merge phase.
//!
//! Where [`pm_core::MergeSim`] advances a virtual clock over a modeled
//! disk array, this crate executes the *same decision procedure* —
//! initial load, demand fetches, inter-run prefetch operations,
//! admission, AIMD depth adaptation — against an [`IoQueue`] with
//! batched submission and completion, merging real records through the
//! pm-extsort loser tree.
//!
//! The engine talks to storage through the [`IoQueue`] trait (batched
//! submit/complete, explicit open and depth negotiation). Queues:
//!
//! * [`ThreadedQueue`] — per-disk worker threads over any
//!   [`BlockDevice`]: [`MemoryDevice`] (the golden reference),
//!   [`FileDevice`] (buffered or `O_DIRECT` files; tmpfs for smoke
//!   tests, real disks for real measurements), or [`LatencyDevice`]
//!   (injects the pm-disk seek/rotation model's deterministic service
//!   time, for cross-validation via [`MergeEngine::predict`]).
//! * `UringQueue` (feature `uring`, Linux) — one io_uring per disk file
//!   with `O_DIRECT` and registered buffers, completing out of order at
//!   queue depth > 1.
//! * [`SharedPort`] — one job's lane into a [`SharedDeviceSet`],
//!   scheduled against other jobs by a [`pm_service::IoSched`] policy.
//! * [`BlockingQueue`] — deprecated depth-1 shim over a bare
//!   [`BlockDevice`], the pre-queue calling convention.
//!
//! ```
//! use pm_core::ScenarioBuilder;
//! use pm_engine::{ExecConfig, MergeEngine, ThreadedQueue};
//! use pm_extsort::Record;
//!
//! let cfg = ScenarioBuilder::new(4, 2).intra(3).build().unwrap();
//! let runs: Vec<Vec<Record>> = (0..4)
//!     .map(|r| (0..100u64).map(|i| Record::new(i * 4 + r, i)).collect())
//!     .collect();
//! let engine = MergeEngine::new(
//!     ExecConfig::new(cfg),
//!     runs.iter().map(Vec::len).collect(),
//! )
//! .unwrap();
//! let mut queue = ThreadedQueue::memory(2, engine.block_bytes(), engine.queue_options());
//! engine.load(&mut queue, &runs).unwrap();
//! let outcome = engine.execute(Box::new(queue)).unwrap();
//! assert!(outcome.output.windows(2).all(|w| w[0].key <= w[1].key));
//! assert_eq!(outcome.output.len(), 400);
//! ```

#![cfg_attr(not(feature = "uring"), forbid(unsafe_code))]
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod device;
mod engine;
mod ioqueue;
mod multipass;
mod shared;
#[cfg(feature = "uring")]
#[allow(unsafe_code)]
mod uring;
mod workers;

pub use block::{block_bytes, decode_records, encode_records, RECORD_BYTES};
pub use device::{
    BlockDevice, FileDevice, InjectedService, LatencyDevice, MemoryDevice, DIRECT_ALIGN,
};
pub use engine::{
    disk_seed_for, EnginePrediction, ExecConfig, ExecOutcome, ExecReport, MergeEngine,
};
#[allow(deprecated)]
pub use ioqueue::BlockingQueue;
pub use ioqueue::{IoCompletion, IoQueue, IoRequest, QueueOptions};
pub use multipass::{
    clean_stale_passes, MultiPassExecutor, MultiPassOptions, MultiPassOutcome,
    PassBackend, PassOutcome,
};
pub use shared::{SharedDeviceSet, SharedPort};
#[cfg(feature = "uring")]
pub use uring::{uring_available, UringQueue};
pub use workers::ThreadedQueue;
