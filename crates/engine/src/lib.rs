//! pm-engine — real-I/O execution of the paper's merge phase.
//!
//! Where [`pm_core::MergeSim`] advances a virtual clock over a modeled
//! disk array, this crate executes the *same decision procedure* —
//! initial load, demand fetches, inter-run prefetch operations,
//! admission, AIMD depth adaptation — against a [`BlockDevice`] with
//! per-disk I/O worker threads, merging real records through the
//! pm-extsort loser tree.
//!
//! Three backends plug in:
//!
//! * [`MemoryDevice`] — the golden reference: per-disk byte vectors,
//!   zero latency.
//! * [`FileDevice`] — one file per simulated disk, positioned `read_at`
//!   I/O; point it at tmpfs for smoke tests or at real disks for real
//!   measurements.
//! * [`LatencyDevice`] — wraps another backend and injects the pm-disk
//!   seek/rotation model's deterministic per-request service time, so
//!   engine measurements can be cross-validated against simulator
//!   predictions ([`MergeEngine::predict`]).
//!
//! ```
//! use std::sync::Arc;
//! use pm_core::ScenarioBuilder;
//! use pm_engine::{ExecConfig, MemoryDevice, MergeEngine};
//! use pm_extsort::Record;
//!
//! let cfg = ScenarioBuilder::new(4, 2).intra(3).build().unwrap();
//! let runs: Vec<Vec<Record>> = (0..4)
//!     .map(|r| (0..100u64).map(|i| Record::new(i * 4 + r, i)).collect())
//!     .collect();
//! let engine = MergeEngine::new(
//!     ExecConfig::new(cfg),
//!     runs.iter().map(Vec::len).collect(),
//! )
//! .unwrap();
//! let mut device = MemoryDevice::new(2, engine.block_bytes());
//! engine.load(&mut device, &runs).unwrap();
//! let outcome = engine.execute(Arc::new(device)).unwrap();
//! assert!(outcome.output.windows(2).all(|w| w[0].key <= w[1].key));
//! assert_eq!(outcome.output.len(), 400);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod device;
mod engine;
mod multipass;
mod shared;
mod workers;

pub use block::{block_bytes, decode_records, encode_records, RECORD_BYTES};
pub use device::{BlockDevice, FileDevice, InjectedService, LatencyDevice, MemoryDevice};
pub use engine::{
    disk_seed_for, EnginePrediction, ExecConfig, ExecOutcome, ExecReport, MergeEngine,
};
pub use multipass::{
    clean_stale_passes, MultiPassExecutor, MultiPassOptions, MultiPassOutcome,
    PassBackend, PassOutcome,
};
pub use shared::{SharedDeviceSet, SharedPort};
