//! On-device block format.
//!
//! A block holds `records_per_block` fixed-width records; a record is its
//! sort key followed by its record id, both little-endian `u64`s. The
//! final block of a run may be partially filled — the unused tail is
//! zeroed on write and ignored on read (the reader knows each run's
//! record count).

use pm_extsort::Record;

/// Bytes one encoded [`Record`] occupies.
pub const RECORD_BYTES: usize = 16;

/// Bytes one block occupies for the given records-per-block factor.
#[must_use]
pub fn block_bytes(records_per_block: u32) -> usize {
    records_per_block as usize * RECORD_BYTES
}

/// Encodes `records` into `buf` (zero-padding the tail). `buf` must hold
/// at least `records.len() * RECORD_BYTES` bytes.
///
/// # Panics
///
/// Panics if `buf` is too small.
pub fn encode_records(records: &[Record], buf: &mut [u8]) {
    assert!(buf.len() >= records.len() * RECORD_BYTES, "buffer too small");
    let (used, tail) = buf.split_at_mut(records.len() * RECORD_BYTES);
    for (chunk, rec) in used.chunks_exact_mut(RECORD_BYTES).zip(records) {
        chunk[..8].copy_from_slice(&rec.key.to_le_bytes());
        chunk[8..].copy_from_slice(&rec.rid.to_le_bytes());
    }
    tail.fill(0);
}

/// Decodes the first `count` records of an encoded block.
///
/// # Panics
///
/// Panics if `buf` holds fewer than `count` records.
#[must_use]
pub fn decode_records(buf: &[u8], count: usize) -> Vec<Record> {
    assert!(buf.len() >= count * RECORD_BYTES, "buffer too small");
    buf[..count * RECORD_BYTES]
        .chunks_exact(RECORD_BYTES)
        .map(|chunk| {
            let key = u64::from_le_bytes(chunk[..8].try_into().expect("8-byte key"));
            let rid = u64::from_le_bytes(chunk[8..].try_into().expect("8-byte rid"));
            Record::new(key, rid)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_with_partial_tail() {
        let records: Vec<Record> = (0..7).map(|i| Record::new(i * 3, 100 + i)).collect();
        let mut buf = vec![0xAAu8; block_bytes(10)];
        encode_records(&records, &mut buf);
        assert_eq!(decode_records(&buf, 7), records);
        // The tail past the encoded records is zeroed.
        assert!(buf[7 * RECORD_BYTES..].iter().all(|&b| b == 0));
    }
}
