//! The [`IoQueue`] abstraction: batched submission / completion I/O.
//!
//! Where [`crate::BlockDevice`] is the *storage* SPI (one block in, one
//! block out, synchronously), `IoQueue` is the *I/O path* the engine
//! drives: requests are submitted in batches, completions are reaped in
//! batches, and up to [`IoQueue::depth`] requests per disk may be in
//! flight at once. Four implementations exist:
//!
//! * [`crate::ThreadedQueue`] — per-disk worker threads over any
//!   [`crate::BlockDevice`] (memory, file, file+`O_DIRECT`, latency).
//! * [`crate::SharedPort`] — one job's lane into a
//!   [`crate::SharedDeviceSet`], contended with other jobs.
//! * `UringQueue` (feature `uring`) — one io_uring per disk file with
//!   `O_DIRECT` and registered buffers.
//! * [`BlockingQueue`] — the deprecated depth-1 compat shim over a bare
//!   [`crate::BlockDevice`].
//!
//! ## Trait contract
//!
//! **Lifecycle.** A queue is created closed: [`IoQueue::write_block`]
//! loads data (setup is single-threaded, writes after
//! [`IoQueue::open`] are an error on most backends), `open` spawns
//! workers / initialises rings and anchors completion timestamps to the
//! caller's epoch, then [`IoQueue::submit`] / [`IoQueue::complete`]
//! drive the merge, and [`IoQueue::shutdown`] releases everything.
//!
//! **Ordering.** `submit` enqueues the slice's requests per disk in
//! slice order. Backends that model service time ([`crate::ThreadedQueue`]
//! over a [`crate::LatencyDevice`], [`crate::SharedPort`]) *service*
//! each disk's requests in that order — the FIFO premise
//! [`crate::MergeEngine::predict`] parity rests on. Completions carry
//! **no ordering guarantee at all**: any interleaving across disks and
//! even within one disk (io_uring) is legal, and the engine's decisions
//! are invariant to it by construction.
//!
//! **Buffer ownership.** The queue owns all data buffers; a completion
//! hands the payload back as an owned `Vec<u8>` in
//! [`IoCompletion::data`]. Callers never lend buffers to the queue.
//!
//! **Error semantics.** Per-request read failures travel *inside* the
//! matching [`IoCompletion::data`]; `Err` from `submit`/`complete` means
//! the transport itself broke (workers died, ring torn down) and the
//! queue is dead. The CLI maps both onto
//! [`pm_core::PmError::Device`] with the backend's
//! [`IoQueue::backend`] label and exit code 2.

use std::collections::VecDeque;
use std::io;
use std::time::Instant;

use pm_disk::{BlockAddr, DiskId, DiskRequest};

use crate::device::{BlockDevice, InjectedService};
use crate::workers::service_one;

/// One read request submitted to an [`IoQueue`].
#[derive(Debug, Clone, Copy)]
pub struct IoRequest {
    /// The disk request (disk, start block, length, tag).
    pub req: DiskRequest,
    /// Per-disk monotone span id (ties trace issue events to
    /// completions).
    pub span: u64,
    /// When the merge thread submitted the request (queue-wait metrics).
    pub submitted: Instant,
}

/// A serviced request on its way back from an [`IoQueue`].
#[derive(Debug)]
pub struct IoCompletion {
    /// The disk that serviced the request.
    pub disk: u16,
    /// The request's tag, echoed back.
    pub tag: u64,
    /// The request's span id, echoed back.
    pub span: u64,
    /// The request's `sequential_hint` (echoed for accounting).
    pub hint: bool,
    /// The modeled service, when the backend injects latency.
    pub injected: Option<InjectedService>,
    /// Submission instant, nanoseconds since the queue's epoch
    /// (`started_ns - submitted_ns` is the request's queue wait).
    pub submitted_ns: u64,
    /// Service start, nanoseconds since the queue's epoch. Backends
    /// that cannot observe the true start (io_uring) approximate it
    /// with the ring-submission instant.
    pub started_ns: u64,
    /// Service end, nanoseconds since the queue's epoch.
    pub finished_ns: u64,
    /// The block payload, or the per-request read error.
    pub data: io::Result<Vec<u8>>,
}

/// Engine-independent knobs an [`IoQueue`] is built with.
#[derive(Debug, Clone, Copy)]
pub struct QueueOptions {
    /// Per-disk bound on in-flight requests (submission backpressure;
    /// ring depth on io_uring). `0` behaves as `1`.
    pub depth: usize,
    /// Worker threads for threaded backends (`0` = one per disk).
    pub jobs: usize,
    /// Wall-clock scale for injected latency sleeps.
    pub time_scale: f64,
}

impl Default for QueueOptions {
    fn default() -> Self {
        QueueOptions {
            depth: 1,
            jobs: 0,
            time_scale: 1.0,
        }
    }
}

/// A batched-submission block-I/O queue (see the module docs for the
/// full contract).
pub trait IoQueue: Send {
    /// Stable label naming the backend (`"memory"`, `"file"`,
    /// `"latency"`, `"uring"`, …) — used in error context and metrics.
    fn backend(&self) -> &'static str;

    /// Bytes per block.
    fn block_bytes(&self) -> usize;

    /// Number of disks.
    fn disks(&self) -> usize;

    /// Negotiated per-disk queue depth (`0` = effectively unbounded,
    /// e.g. a shared set's scheduler queue).
    fn depth(&self) -> usize;

    /// Writes one block at `start` on `disk` (setup only: most
    /// backends reject writes after [`IoQueue::open`]).
    ///
    /// # Errors
    ///
    /// Any I/O failure, or writing after `open` on a backend that
    /// forbids it.
    fn write_block(&mut self, disk: DiskId, start: BlockAddr, data: &[u8]) -> io::Result<()>;

    /// Transitions the queue from setup to I/O: spawns workers or
    /// initialises rings, and anchors completion timestamps to
    /// `epoch`. Idempotent.
    ///
    /// # Errors
    ///
    /// Any failure bringing the transport up.
    fn open(&mut self, epoch: Instant) -> io::Result<()>;

    /// Submits a batch of reads; per-disk order follows slice order.
    /// May block on backpressure when a disk's depth is exhausted.
    ///
    /// # Errors
    ///
    /// Transport failure (per-request read errors come back inside
    /// completions instead).
    fn submit(&mut self, reqs: &[IoRequest]) -> io::Result<()>;

    /// Reaps completions into `out` (appending), blocking until at
    /// least `min_wait` are available (`0` = poll). Returns how many
    /// were appended — at least `min_wait`, plus everything else
    /// already finished.
    ///
    /// # Errors
    ///
    /// Transport failure, or waiting with nothing in flight.
    fn complete(&mut self, out: &mut Vec<IoCompletion>, min_wait: usize) -> io::Result<usize>;

    /// Releases workers, rings, and buffers. Idempotent.
    ///
    /// # Errors
    ///
    /// Any failure tearing the transport down.
    fn shutdown(&mut self) -> io::Result<()>;
}

/// Depth-1 compat shim: any [`BlockDevice`] as an [`IoQueue`] that
/// services every request synchronously at submission.
///
/// This is the old `read_block` calling convention behind the new API —
/// kept for one release so downstream device implementations keep
/// working, and as the regression reference the depth-1 equivalence
/// tests compare against.
#[deprecated(
    since = "0.11.0",
    note = "depth-1 shim over BlockDevice; build a ThreadedQueue (or UringQueue) instead"
)]
pub struct BlockingQueue<D> {
    device: D,
    time_scale: f64,
    epoch: Instant,
    free_at: Vec<Instant>,
    pending: VecDeque<IoCompletion>,
}

#[allow(deprecated)]
impl<D: BlockDevice> BlockingQueue<D> {
    /// Wraps `device`, servicing at real speed (`time_scale` 1.0).
    #[must_use]
    pub fn new(device: D) -> Self {
        Self::with_time_scale(device, 1.0)
    }

    /// Wraps `device` with a wall-clock scale for injected latency.
    #[must_use]
    pub fn with_time_scale(device: D, time_scale: f64) -> Self {
        let epoch = Instant::now();
        let disks = device.disks();
        BlockingQueue {
            device,
            time_scale,
            epoch,
            free_at: vec![epoch; disks],
            pending: VecDeque::new(),
        }
    }

    /// Unwraps the device.
    pub fn into_inner(self) -> D {
        self.device
    }
}

#[allow(deprecated)]
impl<D: BlockDevice> IoQueue for BlockingQueue<D> {
    fn backend(&self) -> &'static str {
        "blocking"
    }

    fn block_bytes(&self) -> usize {
        self.device.block_bytes()
    }

    fn disks(&self) -> usize {
        self.device.disks()
    }

    fn depth(&self) -> usize {
        1
    }

    fn write_block(&mut self, disk: DiskId, start: BlockAddr, data: &[u8]) -> io::Result<()> {
        self.device.write_block(disk, start, data)
    }

    fn open(&mut self, epoch: Instant) -> io::Result<()> {
        self.epoch = epoch;
        self.free_at = vec![epoch; self.device.disks()];
        Ok(())
    }

    fn submit(&mut self, reqs: &[IoRequest]) -> io::Result<()> {
        for &req in reqs {
            let d = req.req.disk.0 as usize;
            let free_at = self
                .free_at
                .get_mut(d)
                .ok_or_else(|| io::Error::other(format!("no such disk {d}")))?;
            let completion = service_one(&self.device, free_at, req, self.time_scale, self.epoch);
            self.pending.push_back(completion);
        }
        Ok(())
    }

    fn complete(&mut self, out: &mut Vec<IoCompletion>, min_wait: usize) -> io::Result<usize> {
        if self.pending.len() < min_wait {
            return Err(io::Error::other(format!(
                "waiting for {min_wait} completions with only {} in flight",
                self.pending.len()
            )));
        }
        let n = self.pending.len();
        out.extend(self.pending.drain(..));
        Ok(n)
    }

    fn shutdown(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)]

    use super::*;
    use crate::device::MemoryDevice;

    #[test]
    fn blocking_queue_round_trips_a_batch() {
        let bb = 16;
        let mut dev = MemoryDevice::new(2, bb);
        for d in 0..2u16 {
            dev.write_block(DiskId(d), BlockAddr(0), &[d as u8 + 1; 16]).unwrap();
        }
        let mut q = BlockingQueue::new(dev);
        q.open(Instant::now()).unwrap();
        let reqs: Vec<IoRequest> = (0..2u16)
            .map(|d| IoRequest {
                req: DiskRequest {
                    disk: DiskId(d),
                    start: BlockAddr(0),
                    len: 1,
                    sequential_hint: false,
                    tag: u64::from(d),
                },
                span: 0,
                submitted: Instant::now(),
            })
            .collect();
        q.submit(&reqs).unwrap();
        let mut out = Vec::new();
        assert_eq!(q.complete(&mut out, 2).unwrap(), 2);
        for c in &out {
            let data = c.data.as_ref().unwrap();
            assert_eq!(data[0], c.disk as u8 + 1);
        }
        q.shutdown().unwrap();
    }

    #[test]
    fn blocking_queue_rejects_waiting_on_nothing() {
        let mut q = BlockingQueue::new(MemoryDevice::new(1, 16));
        let mut out = Vec::new();
        assert!(q.complete(&mut out, 1).is_err());
        assert_eq!(q.complete(&mut out, 0).unwrap(), 0);
    }
}
