//! Multi-job multiplexing over one device: the service layer's
//! execution face.
//!
//! A [`SharedDeviceSet`] owns one worker thread per shared disk and
//! admits concurrent [`crate::MergeEngine`] jobs, each through its own
//! [`SharedPort`]. The contended resource is the disk *arm* — one
//! request in service per disk, latency-anchored exactly like the
//! per-run pool — while each port reads its own loaded
//! [`BlockDevice`] (pass one shared `Arc` to every port for physically
//! shared data).
//! Where the per-run [`crate::engine::ExecConfig`] pool services each
//! disk strictly FIFO, the shared set picks the next request with a
//! [`pm_service::IoSched`] policy — the *same* policy object the
//! contention simulator sweeps, so a policy measured in simulation is
//! the policy that schedules real I/O.
//!
//! ## Decision parity under interleaving
//!
//! Scheduling only reorders requests *across* jobs. Within one job the
//! policies all serve a flow's requests in submission order (every
//! policy breaks ties by global enqueue sequence, and a flow's entries
//! share their scheduling key), and a job's merge decisions are a pure
//! function of its own depletion sequence — completion timing feeds no
//! decision. Each job therefore submits the identical per-disk request
//! sequence it would submit running alone, and
//! [`crate::MergeEngine::predict`] parity holds per job no matter how
//! the shared disks interleave them.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use pm_disk::{BlockAddr, DiskId};
use pm_metrics::{MetricsSink, StackMetrics};
use pm_service::{IoSched, PendingIo};

use crate::device::BlockDevice;
use crate::ioqueue::{IoCompletion, IoQueue, IoRequest};
use crate::workers::{service_one, Channel};

/// One queued request: what services it and where the completion goes
/// (the scheduler's view lives in the parallel `ios` vector).
struct Entry {
    req: IoRequest,
    device: Arc<dyn BlockDevice>,
    done: Arc<Channel<IoCompletion>>,
}

/// A disk's shared queue. `ios` mirrors `entries` index-for-index so the
/// scheduler picks over a plain [`PendingIo`] slice.
#[derive(Default)]
struct DiskQueue {
    entries: Vec<Entry>,
    ios: Vec<PendingIo>,
    closed: bool,
}

struct SharedInner {
    queues: Vec<(Mutex<DiskQueue>, Condvar)>,
    /// The scheduling policy, shared by every disk worker. Lock order:
    /// queue first, then sched (submit and pick both follow it).
    sched: Mutex<Box<dyn IoSched>>,
    /// Global enqueue sequence across all disks and jobs.
    seq: AtomicU64,
    /// Optional metrics sink: disk workers sample per-disk queue depth
    /// and per-tenant WFQ virtual-time lag at every dispatch. Concrete
    /// ([`StackMetrics`], not the [`MetricsSink`] trait) because worker
    /// threads need a shared owned handle and the trait's associated
    /// const makes it non-dyn-compatible.
    metrics: Option<Arc<StackMetrics>>,
}

/// Per-disk worker threads shared by multiple merge jobs, with a
/// pluggable [`IoSched`] picking the next request whenever a disk frees.
///
/// Create with [`SharedDeviceSet::start`], hand each job a port via
/// [`SharedDeviceSet::port`], run the jobs (threads or sequentially),
/// then [`SharedDeviceSet::shutdown`].
pub struct SharedDeviceSet {
    inner: Arc<SharedInner>,
    handles: Vec<std::thread::JoinHandle<()>>,
    jobs: u16,
}

impl SharedDeviceSet {
    /// Starts one worker per shared disk, scheduling with `sched`
    /// (which is [`IoSched::reset`] for `disks × tenants` flows —
    /// `tenants` caps how many ports should be handed out).
    ///
    /// `time_scale` scales injected latency exactly as the per-run pool
    /// does.
    #[must_use]
    pub fn start(disks: usize, tenants: usize, sched: Box<dyn IoSched>, time_scale: f64) -> Self {
        Self::start_with_metrics(disks, tenants, sched, time_scale, None)
    }

    /// [`SharedDeviceSet::start`] with a metrics sink: every dispatch
    /// samples the disk's remaining queue depth
    /// (`pm_disk_queue_depth`) and, under a WFQ scheduler, the served
    /// tenant's virtual-time lag (`pm_tenant_wfq_lag_ticks`).
    #[must_use]
    pub fn start_with_metrics(
        disks: usize,
        tenants: usize,
        mut sched: Box<dyn IoSched>,
        time_scale: f64,
        metrics: Option<Arc<StackMetrics>>,
    ) -> Self {
        sched.reset(disks, tenants);
        let epoch = Instant::now();
        let inner = Arc::new(SharedInner {
            queues: (0..disks)
                .map(|_| (Mutex::new(DiskQueue::default()), Condvar::new()))
                .collect(),
            sched: Mutex::new(sched),
            seq: AtomicU64::new(0),
            metrics,
        });
        let mut handles = Vec::with_capacity(disks);
        for d in 0..disks {
            let inner = Arc::clone(&inner);
            handles.push(std::thread::spawn(move || {
                disk_worker(&inner, d, time_scale, epoch);
            }));
        }
        SharedDeviceSet {
            inner,
            handles,
            jobs: 0,
        }
    }

    /// Registers the next job and returns its port. The job's requests
    /// read from `device` (its own loaded data — pass the same `Arc` to
    /// every port for a physically shared device) but contend for the
    /// set's disk workers; `weight` feeds the scheduler and completions
    /// come back on the port's own channel.
    pub fn port(&mut self, device: Arc<dyn BlockDevice>, weight: u32) -> SharedPort {
        let tenant = self.jobs;
        self.jobs += 1;
        SharedPort {
            inner: Arc::clone(&self.inner),
            device,
            done: Arc::new(Channel::new(usize::MAX)),
            tenant: u32::from(tenant),
            weight: weight.max(1),
        }
    }

    /// Tenant id the next [`SharedDeviceSet::port`] call will assign.
    #[must_use]
    pub fn next_tenant(&self) -> u16 {
        self.jobs
    }

    /// Closes every disk queue and joins the workers. Requests already
    /// queued are still serviced first.
    pub fn shutdown(&mut self) {
        for (queue, cond) in &self.inner.queues {
            queue.lock().expect("shared queue poisoned").closed = true;
            cond.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for SharedDeviceSet {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One job's lane into a [`SharedDeviceSet`].
pub struct SharedPort {
    inner: Arc<SharedInner>,
    device: Arc<dyn BlockDevice>,
    done: Arc<Channel<IoCompletion>>,
    tenant: u32,
    weight: u32,
}

impl SharedPort {
    /// The dense tenant index this port's requests are tagged with.
    #[must_use]
    pub fn tenant(&self) -> u16 {
        self.tenant as u16
    }

    fn submit_one(&mut self, req: IoRequest) {
        let d = req.req.disk.0 as usize;
        let io = PendingIo {
            tenant: self.tenant,
            weight: self.weight,
            seq: self.inner.seq.fetch_add(1, Ordering::Relaxed),
            cost: 1,
        };
        let (queue, cond) = &self.inner.queues[d];
        let mut q = queue.lock().expect("shared queue poisoned");
        if q.closed {
            return;
        }
        q.entries.push(Entry {
            req,
            device: Arc::clone(&self.device),
            done: Arc::clone(&self.done),
        });
        q.ios.push(io);
        self.inner
            .sched
            .lock()
            .expect("shared sched poisoned")
            .enqueued(d, &io);
        cond.notify_one();
    }
}

impl IoQueue for SharedPort {
    fn backend(&self) -> &'static str {
        "shared"
    }

    fn block_bytes(&self) -> usize {
        self.device.block_bytes()
    }

    fn disks(&self) -> usize {
        self.device.disks()
    }

    fn depth(&self) -> usize {
        // The set's scheduler queue is unbounded per disk.
        0
    }

    fn write_block(&mut self, _disk: DiskId, _start: BlockAddr, _data: &[u8]) -> io::Result<()> {
        Err(io::Error::other(
            "shared ports are read-only; load the device before registering it with the set",
        ))
    }

    fn open(&mut self, _epoch: Instant) -> io::Result<()> {
        // The set's workers are already running; their timestamps are
        // anchored to the set's epoch, shared by every tenant.
        Ok(())
    }

    fn submit(&mut self, reqs: &[IoRequest]) -> io::Result<()> {
        for &req in reqs {
            self.submit_one(req);
        }
        Ok(())
    }

    fn complete(&mut self, out: &mut Vec<IoCompletion>, min_wait: usize) -> io::Result<usize> {
        let mut n = 0;
        while n < min_wait {
            match self.done.pop() {
                Some(c) => {
                    out.push(c);
                    n += 1;
                }
                None => {
                    return Err(io::Error::other(
                        "shared device set shut down with requests outstanding",
                    ))
                }
            }
        }
        while let Some(c) = self.done.try_pop() {
            out.push(c);
            n += 1;
        }
        Ok(n)
    }

    fn shutdown(&mut self) -> io::Result<()> {
        // The workers belong to the set; only this job's completion
        // channel closes.
        self.done.close();
        Ok(())
    }
}

fn disk_worker(inner: &SharedInner, d: usize, time_scale: f64, epoch: Instant) {
    let mut free_at = epoch;
    let (queue, cond) = &inner.queues[d];
    loop {
        let entry = {
            let mut q = queue.lock().expect("shared queue poisoned");
            loop {
                if !q.entries.is_empty() {
                    break;
                }
                if q.closed {
                    return;
                }
                q = cond.wait(q).expect("shared queue poisoned");
            }
            let mut sched = inner.sched.lock().expect("shared sched poisoned");
            let idx = sched.pick(d, &q.ios);
            let io = q.ios[idx];
            sched.served(d, &io);
            if let Some(m) = &inner.metrics {
                if let Some(lag) = sched.vtime_lag(d, io.tenant as usize) {
                    m.wfq_lag(io.tenant as usize, lag);
                }
            }
            drop(sched);
            q.ios.swap_remove(idx);
            if let Some(m) = &inner.metrics {
                m.disk_queue_depth(d, q.ios.len() as f64);
            }
            q.entries.swap_remove(idx)
        };
        let completion = service_one(&*entry.device, &mut free_at, entry.req, time_scale, epoch);
        entry.done.push(completion);
    }
}
