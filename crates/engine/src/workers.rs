//! Per-disk I/O worker threads.
//!
//! Each worker owns one bounded FIFO request queue and services one or
//! more disks (`disk → disk mod workers`); with the default of one
//! worker per disk every disk has a dedicated thread, exactly one
//! request in service at a time, and per-disk FIFO order. Submission
//! blocks when the worker's queue is full (bounded-queue backpressure
//! on the merge thread); completions flow back over one unbounded queue
//! the merge thread drains.

use std::collections::VecDeque;
use std::io;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use pm_disk::DiskRequest;

use crate::device::{BlockDevice, InjectedService};

/// One read request in flight to a worker.
pub(crate) struct IoRequest {
    pub req: DiskRequest,
    /// Per-disk monotone span id (ties trace issue events to completions).
    pub span: u64,
    /// When the merge thread submitted the request (queue-wait metrics).
    pub submitted: Instant,
}

/// A serviced request on its way back to the merge thread.
pub(crate) struct IoCompletion {
    pub disk: u16,
    pub tag: u64,
    pub span: u64,
    /// The request's `sequential_hint` (echoed for accounting).
    pub hint: bool,
    /// The modeled service, when the backend injects latency.
    pub injected: Option<InjectedService>,
    /// Submission instant, nanoseconds since the engine epoch
    /// (`started_ns - submitted_ns` is the request's queue wait).
    pub submitted_ns: u64,
    /// Service start/end, nanoseconds since the engine epoch.
    pub started_ns: u64,
    pub finished_ns: u64,
    pub data: io::Result<Vec<u8>>,
}

/// Where an executing merge sends its reads and receives its blocks.
///
/// Two implementations: [`IoPool`] (a dedicated per-run worker pool —
/// `finish` tears it down) and `shared::SharedPort` (one job's lane into
/// a [`crate::SharedDeviceSet`] — `finish` leaves the shared workers
/// running for the other jobs).
pub(crate) trait IoPort: Send {
    /// Submits a read; may block on backpressure.
    fn submit(&mut self, req: IoRequest);
    /// Blocks for this run's next completion; `None` if service died.
    fn recv(&mut self) -> Option<IoCompletion>;
    /// The run is over: release whatever the port holds.
    fn finish(&mut self);
}

struct ChannelInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A minimal Mutex+Condvar MPSC channel with an optional capacity bound.
pub(crate) struct Channel<T> {
    inner: Mutex<ChannelInner<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Channel<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        Channel {
            inner: Mutex::new(ChannelInner {
                items: VecDeque::new(),
                closed: false,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Blocks while the channel is full. Pushes are lost after `close`.
    pub(crate) fn push(&self, item: T) {
        let mut inner = self.inner.lock().expect("channel poisoned");
        while inner.items.len() >= self.capacity && !inner.closed {
            inner = self.not_full.wait(inner).expect("channel poisoned");
        }
        if inner.closed {
            return;
        }
        inner.items.push_back(item);
        self.not_empty.notify_one();
    }

    /// Blocks until an item is available; `None` once closed and drained.
    pub(crate) fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("channel poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("channel poisoned");
        }
    }

    pub(crate) fn close(&self) {
        let mut inner = self.inner.lock().expect("channel poisoned");
        inner.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// The worker pool: `min(jobs, disks)` threads (or one per disk when
/// `jobs == 0`), each with its own bounded request queue.
pub(crate) struct IoPool {
    queues: Vec<Arc<Channel<IoRequest>>>,
    completions: Arc<Channel<IoCompletion>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl IoPool {
    pub fn start(
        device: Arc<dyn BlockDevice>,
        disks: usize,
        jobs: usize,
        queue_capacity: usize,
        time_scale: f64,
        epoch: Instant,
    ) -> Self {
        let workers = if jobs == 0 { disks } else { jobs.min(disks) }.max(1);
        let completions = Arc::new(Channel::new(usize::MAX));
        let mut queues = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            queues.push(Arc::new(Channel::new(queue_capacity.max(1))));
        }
        for queue in &queues {
            let queue = Arc::clone(queue);
            let completions = Arc::clone(&completions);
            let device = Arc::clone(&device);
            handles.push(std::thread::spawn(move || {
                worker_loop(&device, &queue, &completions, disks, time_scale, epoch);
            }));
        }
        IoPool {
            queues,
            completions,
            handles,
        }
    }

    /// Routes the request to its disk's worker; blocks on a full queue.
    pub fn submit(&self, req: IoRequest) {
        let worker = req.req.disk.0 as usize % self.queues.len();
        self.queues[worker].push(req);
    }

    /// Blocks for the next completion; `None` if every worker exited.
    pub fn recv(&self) -> Option<IoCompletion> {
        self.completions.pop()
    }

    /// Closes the request queues and joins the workers.
    pub fn shutdown(&mut self) {
        for q in &self.queues {
            q.close();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        self.completions.close();
    }
}

impl IoPort for IoPool {
    fn submit(&mut self, req: IoRequest) {
        IoPool::submit(self, req);
    }

    fn recv(&mut self) -> Option<IoCompletion> {
        IoPool::recv(self)
    }

    fn finish(&mut self) {
        self.shutdown();
    }
}

impl Drop for IoPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(
    device: &Arc<dyn BlockDevice>,
    queue: &Channel<IoRequest>,
    completions: &Channel<IoCompletion>,
    disks: usize,
    time_scale: f64,
    epoch: Instant,
) {
    // Per-disk service deadlines for injected latency: each sleep is
    // anchored to the previous deadline, not to "now", so scheduling
    // jitter does not accumulate across a run.
    let mut free_at = vec![epoch; disks];
    while let Some(io) = queue.pop() {
        let d = io.req.disk.0 as usize;
        let completion = service_one(device, &mut free_at[d], io, time_scale, epoch);
        completions.push(completion);
    }
}

/// Services one request synchronously: real read plus (when the backend
/// injects latency) the modeled service time slept out against the
/// disk's anchored deadline. Shared by the per-run worker pool and the
/// multi-job shared device set, so both faces time requests identically.
pub(crate) fn service_one(
    device: &Arc<dyn BlockDevice>,
    free_at: &mut Instant,
    io: IoRequest,
    time_scale: f64,
    epoch: Instant,
) -> IoCompletion {
    let IoRequest { req, span, submitted } = io;
    let injected = device.service_timing(&req);
    let mut buf = vec![0u8; device.block_bytes()];
    let (started, finished);
    let result;
    if let Some(inj) = &injected {
        let service = scaled(inj.breakdown.total().as_nanos(), time_scale);
        let start = Instant::now().max(*free_at);
        let deadline = start + service;
        // Read the payload first (memory/tmpfs reads are orders of
        // magnitude cheaper than the modeled mechanics), then sleep
        // out the remainder of the modeled service.
        result = read(device, &req, &mut buf);
        sleep_until(deadline);
        *free_at = deadline;
        started = start;
        finished = deadline;
    } else {
        started = Instant::now();
        result = read(device, &req, &mut buf);
        finished = Instant::now();
    }
    IoCompletion {
        disk: req.disk.0,
        tag: req.tag,
        span,
        hint: req.sequential_hint,
        injected,
        submitted_ns: since(epoch, submitted),
        started_ns: since(epoch, started),
        finished_ns: since(epoch, finished),
        data: result.map(|()| buf),
    }
}

fn read(device: &Arc<dyn BlockDevice>, req: &DiskRequest, buf: &mut [u8]) -> io::Result<()> {
    device.read_block(req.disk, req.start, buf)
}

fn since(epoch: Instant, at: Instant) -> u64 {
    at.saturating_duration_since(epoch).as_nanos() as u64
}

fn scaled(nanos: u64, time_scale: f64) -> Duration {
    Duration::from_nanos((nanos as f64 * time_scale).round() as u64)
}

fn sleep_until(deadline: Instant) {
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        std::thread::sleep(deadline - now);
    }
}
