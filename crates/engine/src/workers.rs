//! [`ThreadedQueue`]: the worker-thread [`IoQueue`] over any
//! [`BlockDevice`].
//!
//! Each worker owns one bounded FIFO request queue and services one or
//! more disks (`disk → disk mod workers`); with the default of one
//! worker per disk every disk has a dedicated thread, exactly one
//! request in service at a time, and per-disk FIFO order. Submission
//! blocks when the worker's queue is full (bounded-queue backpressure
//! on the merge thread, sized by [`QueueOptions::depth`]); completions
//! flow back over one unbounded queue the merge thread reaps in
//! batches.

use std::collections::VecDeque;
use std::io;
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use pm_core::PmError;
use pm_disk::{BlockAddr, DiskId, DiskRequest, DiskSpec, QueueDiscipline};

use crate::device::{BlockDevice, FileDevice, LatencyDevice, MemoryDevice};
use crate::ioqueue::{IoCompletion, IoQueue, IoRequest, QueueOptions};

struct ChannelInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A minimal Mutex+Condvar MPSC channel with an optional capacity bound.
pub(crate) struct Channel<T> {
    inner: Mutex<ChannelInner<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Channel<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        Channel {
            inner: Mutex::new(ChannelInner {
                items: VecDeque::new(),
                closed: false,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Blocks while the channel is full. Pushes are lost after `close`.
    pub(crate) fn push(&self, item: T) {
        let mut inner = self.inner.lock().expect("channel poisoned");
        while inner.items.len() >= self.capacity && !inner.closed {
            inner = self.not_full.wait(inner).expect("channel poisoned");
        }
        if inner.closed {
            return;
        }
        inner.items.push_back(item);
        self.not_empty.notify_one();
    }

    /// Blocks until an item is available; `None` once closed and drained.
    pub(crate) fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("channel poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("channel poisoned");
        }
    }

    /// Takes an item only if one is already available.
    pub(crate) fn try_pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("channel poisoned");
        let item = inner.items.pop_front();
        if item.is_some() {
            self.not_full.notify_one();
        }
        item
    }

    pub(crate) fn close(&self) {
        let mut inner = self.inner.lock().expect("channel poisoned");
        inner.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

struct Running {
    queues: Vec<Arc<Channel<IoRequest>>>,
    completions: Arc<Channel<IoCompletion>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// The threaded [`IoQueue`]: `min(jobs, disks)` worker threads (or one
/// per disk when `jobs == 0`) over any [`BlockDevice`], each worker with
/// its own request queue bounded to [`QueueOptions::depth`] entries.
pub struct ThreadedQueue {
    device: Arc<dyn BlockDevice>,
    label: &'static str,
    opts: QueueOptions,
    running: Option<Running>,
}

impl ThreadedQueue {
    /// Wraps an arbitrary device under the given backend label.
    #[must_use]
    pub fn over(device: Arc<dyn BlockDevice>, label: &'static str, opts: QueueOptions) -> Self {
        ThreadedQueue {
            device,
            label,
            opts,
            running: None,
        }
    }

    /// An in-memory backend (`disks` RAM arrays).
    #[must_use]
    pub fn memory(disks: usize, block_bytes: usize, opts: QueueOptions) -> Self {
        Self::over(Arc::new(MemoryDevice::new(disks, block_bytes)), "memory", opts)
    }

    /// A buffered-file backend: one file per disk under `dir`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures.
    pub fn file(dir: &Path, disks: usize, block_bytes: usize, opts: QueueOptions) -> io::Result<Self> {
        Ok(Self::over(
            Arc::new(FileDevice::create(dir, disks, block_bytes)?),
            "file",
            opts,
        ))
    }

    /// A file backend whose reads bypass the page cache (`O_DIRECT`).
    ///
    /// # Errors
    ///
    /// [`PmError::Config`] when `block_bytes` violates the
    /// [`crate::DIRECT_ALIGN`] alignment `O_DIRECT` requires, or the
    /// underlying file-creation failure.
    pub fn file_direct(
        dir: &Path,
        disks: usize,
        block_bytes: usize,
        opts: QueueOptions,
    ) -> Result<Self, PmError> {
        Ok(Self::over(
            Arc::new(FileDevice::create_direct(dir, disks, block_bytes)?),
            "file-direct",
            opts,
        ))
    }

    /// An in-memory backend wrapped in the [`LatencyDevice`] service
    /// model (seed with [`crate::disk_seed_for`] for simulator parity).
    #[must_use]
    pub fn latency(
        disks: usize,
        block_bytes: usize,
        spec: DiskSpec,
        discipline: QueueDiscipline,
        disk_seed: u64,
        opts: QueueOptions,
    ) -> Self {
        let inner = MemoryDevice::new(disks, block_bytes);
        Self::over(
            Arc::new(LatencyDevice::new(inner, disks, spec, discipline, disk_seed)),
            "latency",
            opts,
        )
    }

    /// Tears the workers down (if open) and hands back the device —
    /// e.g. to register a loaded device with a
    /// [`crate::SharedDeviceSet`].
    #[must_use]
    pub fn into_device(mut self) -> Arc<dyn BlockDevice> {
        let _ = IoQueue::shutdown(&mut self);
        Arc::clone(&self.device)
    }
}

impl IoQueue for ThreadedQueue {
    fn backend(&self) -> &'static str {
        self.label
    }

    fn block_bytes(&self) -> usize {
        self.device.block_bytes()
    }

    fn disks(&self) -> usize {
        self.device.disks()
    }

    fn depth(&self) -> usize {
        self.opts.depth.max(1)
    }

    fn write_block(&mut self, disk: DiskId, start: BlockAddr, data: &[u8]) -> io::Result<()> {
        if self.running.is_some() {
            return Err(io::Error::other(
                "writes are setup-only: load the queue before open()",
            ));
        }
        let device = Arc::get_mut(&mut self.device)
            .ok_or_else(|| io::Error::other("device is shared; load it before sharing"))?;
        device.write_block(disk, start, data)
    }

    fn open(&mut self, epoch: Instant) -> io::Result<()> {
        if self.running.is_some() {
            return Ok(());
        }
        let disks = self.device.disks();
        let jobs = self.opts.jobs;
        let workers = if jobs == 0 { disks } else { jobs.min(disks) }.max(1);
        let capacity = self.opts.depth.max(1);
        let time_scale = self.opts.time_scale;
        let completions = Arc::new(Channel::new(usize::MAX));
        let mut queues = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            queues.push(Arc::new(Channel::new(capacity)));
        }
        for queue in &queues {
            let queue = Arc::clone(queue);
            let completions = Arc::clone(&completions);
            let device = Arc::clone(&self.device);
            handles.push(std::thread::spawn(move || {
                worker_loop(&*device, &queue, &completions, disks, time_scale, epoch);
            }));
        }
        self.running = Some(Running {
            queues,
            completions,
            handles,
        });
        Ok(())
    }

    fn submit(&mut self, reqs: &[IoRequest]) -> io::Result<()> {
        let running = self
            .running
            .as_ref()
            .ok_or_else(|| io::Error::other("queue not opened"))?;
        for &req in reqs {
            let worker = req.req.disk.0 as usize % running.queues.len();
            running.queues[worker].push(req);
        }
        Ok(())
    }

    fn complete(&mut self, out: &mut Vec<IoCompletion>, min_wait: usize) -> io::Result<usize> {
        let running = self
            .running
            .as_ref()
            .ok_or_else(|| io::Error::other("queue not opened"))?;
        let mut n = 0;
        while n < min_wait {
            match running.completions.pop() {
                Some(c) => {
                    out.push(c);
                    n += 1;
                }
                None => {
                    return Err(io::Error::other(
                        "I/O workers exited with requests outstanding",
                    ))
                }
            }
        }
        while let Some(c) = running.completions.try_pop() {
            out.push(c);
            n += 1;
        }
        Ok(n)
    }

    fn shutdown(&mut self) -> io::Result<()> {
        if let Some(running) = self.running.take() {
            for q in &running.queues {
                q.close();
            }
            for handle in running.handles {
                let _ = handle.join();
            }
            running.completions.close();
        }
        Ok(())
    }
}

impl Drop for ThreadedQueue {
    fn drop(&mut self) {
        let _ = IoQueue::shutdown(self);
    }
}

fn worker_loop(
    device: &dyn BlockDevice,
    queue: &Channel<IoRequest>,
    completions: &Channel<IoCompletion>,
    disks: usize,
    time_scale: f64,
    epoch: Instant,
) {
    // Per-disk service deadlines for injected latency: each sleep is
    // anchored to the previous deadline, not to "now", so scheduling
    // jitter does not accumulate across a run.
    let mut free_at = vec![epoch; disks];
    while let Some(io) = queue.pop() {
        let d = io.req.disk.0 as usize;
        let completion = service_one(device, &mut free_at[d], io, time_scale, epoch);
        completions.push(completion);
    }
}

/// Services one request synchronously: real read plus (when the backend
/// injects latency) the modeled service time slept out against the
/// disk's anchored deadline. Shared by the threaded queue, the depth-1
/// compat shim, and the multi-job shared device set, so every face
/// times requests identically.
pub(crate) fn service_one(
    device: &dyn BlockDevice,
    free_at: &mut Instant,
    io: IoRequest,
    time_scale: f64,
    epoch: Instant,
) -> IoCompletion {
    let IoRequest { req, span, submitted } = io;
    let injected = device.service_timing(&req);
    let mut buf = vec![0u8; device.block_bytes()];
    let (started, finished);
    let result;
    if let Some(inj) = &injected {
        let service = scaled(inj.breakdown.total().as_nanos(), time_scale);
        let start = Instant::now().max(*free_at);
        let deadline = start + service;
        // Read the payload first (memory/tmpfs reads are orders of
        // magnitude cheaper than the modeled mechanics), then sleep
        // out the remainder of the modeled service.
        result = read(device, &req, &mut buf);
        sleep_until(deadline);
        *free_at = deadline;
        started = start;
        finished = deadline;
    } else {
        started = Instant::now();
        result = read(device, &req, &mut buf);
        finished = Instant::now();
    }
    IoCompletion {
        disk: req.disk.0,
        tag: req.tag,
        span,
        hint: req.sequential_hint,
        injected,
        submitted_ns: since(epoch, submitted),
        started_ns: since(epoch, started),
        finished_ns: since(epoch, finished),
        data: result.map(|()| buf),
    }
}

fn read(device: &dyn BlockDevice, req: &DiskRequest, buf: &mut [u8]) -> io::Result<()> {
    device.read_block(req.disk, req.start, buf)
}

pub(crate) fn since(epoch: Instant, at: Instant) -> u64 {
    at.saturating_duration_since(epoch).as_nanos() as u64
}

fn scaled(nanos: u64, time_scale: f64) -> Duration {
    Duration::from_nanos((nanos as f64 * time_scale).round() as u64)
}

fn sleep_until(deadline: Instant) {
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        std::thread::sleep(deadline - now);
    }
}
