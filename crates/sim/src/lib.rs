//! Deterministic discrete-event simulation kernel for `prefetchmerge`.
//!
//! Pai & Varman's original study was built on the Rice C Simulation Package
//! (CSIM), a process-oriented discrete-event simulator. This crate is the
//! equivalent substrate, rebuilt from scratch as an event-calendar kernel:
//!
//! * [`SimTime`] / [`SimDuration`] — simulated time as **integer
//!   nanoseconds**, so the paper's disk constants (2.16 ms transfer,
//!   8.33 ms average latency, 0.03 ms/cylinder seek) are exact and the
//!   event heap never depends on floating-point comparisons.
//! * [`EventQueue`] — the future-event list: a binary heap with a stable
//!   FIFO tie-break, so simultaneous events fire in scheduling order and
//!   every run is exactly reproducible.
//! * [`Executive`] — clock + event list + dispatch loop.
//! * [`SimRng`] — a self-contained xoshiro256\*\* generator (seeded through
//!   splitmix64) with the variate helpers the disk model needs. Keeping the
//!   generator in-tree pins the exact random stream independent of external
//!   crate versions; an adapter to `rand_core` is provided for interop.
//!
//! The process-oriented constructs of CSIM (per-request processes that
//! suspend in disk queues, and a "wait on prefetch" facility) map onto this
//! kernel as explicit request state machines in `pm-disk` and `pm-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod events;
mod executive;
mod rng;
mod time;

pub use events::EventQueue;
pub use executive::Executive;
pub use rng::{derive_seeds, SimRng, DRAW_BUFFER_LEN};
pub use time::{SimDuration, SimTime};
