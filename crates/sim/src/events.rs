//! The future-event list.

use crate::SimTime;

/// A pending event. The fire time (nanoseconds, high 64 bits) and the
/// insertion sequence number (low 64 bits) are packed into one `u128` key,
/// so ordering by `key` is exactly lexicographic `(time, seq)` — earliest
/// time first, FIFO within an instant — and the pop scan compares a single
/// integer per element.
struct Scheduled<E> {
    key: u128,
    event: E,
}

impl<E> Scheduled<E> {
    fn time(&self) -> SimTime {
        SimTime::from_nanos((self.key >> 64) as u64)
    }
}

/// A deterministic future-event list.
///
/// Events are popped in non-decreasing time order; events scheduled for the
/// same instant are popped in the order they were scheduled (FIFO). This
/// stability is what makes whole simulation runs bit-reproducible.
///
/// The list is stored as a flat, unordered vector and popped by a linear
/// minimum scan over `(time, seq)`. The merge simulator's completion
/// coalescing bounds the pending count at O(D) — one event per disk plus
/// the CPU step — and at that size a branch-predictable scan over a dozen
/// contiguous elements beats a binary heap's sift links. Sequence numbers
/// are unique, so the scan's minimum is unique and the pop order is
/// identical to any correct priority queue over the same keys.
///
/// # Examples
///
/// ```
/// use pm_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(20), "b");
/// q.schedule(SimTime::from_nanos(10), "a");
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "b")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    slots: Vec<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            slots: Vec::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` pending events.
    ///
    /// The merge simulator's event list is O(D): one completion event per
    /// busy disk (each disk re-arms its *next* completion on dispatch)
    /// plus one CPU event. Sizing the list up front keeps the steady-state
    /// hot path free of allocations.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            slots: Vec::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Ensures room for at least `additional` more pending events.
    pub fn reserve(&mut self, additional: usize) {
        self.slots.reserve(additional);
    }

    /// Number of pending events the queue can hold without reallocating.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.capacity()
    }

    /// Schedules `event` to fire at absolute time `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let key = (u128::from(time.as_nanos()) << 64) | u128::from(seq);
        self.slots.push(Scheduled { key, event });
    }

    /// Index of the earliest pending event (unique: seq numbers never
    /// repeat, so neither do keys), or `None` if the queue is empty.
    fn earliest(&self) -> Option<usize> {
        let mut best = 0;
        for i in 1..self.slots.len() {
            if self.slots[i].key < self.slots[best].key {
                best = i;
            }
        }
        (!self.slots.is_empty()).then_some(best)
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let idx = self.earliest()?;
        let s = self.slots.swap_remove(idx);
        Some((s.time(), s.event))
    }

    /// Fire time of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.earliest().map(|i| self.slots[i].time())
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.slots.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        assert_eq!(q.pop(), Some((t(10), 1)));
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(30), 3)));
        assert!(q.is_empty());
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn interleaved_times_and_ties() {
        let mut q = EventQueue::new();
        q.schedule(t(10), "a");
        q.schedule(t(5), "b");
        q.schedule(t(10), "c");
        q.schedule(t(5), "d");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["b", "d", "a", "c"]);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.schedule(t(7), ());
        assert_eq!(q.peek_time(), Some(t(7)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(7), ())));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(t(1), ());
        q.schedule(t(2), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn with_capacity_preallocates_and_reserve_grows() {
        let mut q: EventQueue<u32> = EventQueue::with_capacity(8);
        assert!(q.capacity() >= 8);
        let cap = q.capacity();
        for i in 0..8 {
            q.schedule(t(i), i as u32);
        }
        assert_eq!(q.capacity(), cap, "scheduling within capacity must not grow");
        q.reserve(100);
        assert!(q.capacity() >= 108);
        assert_eq!(q.pop(), Some((t(0), 0)));
    }

    #[test]
    fn fifo_tie_break_survives_coalesced_rearming() {
        // The O(D) coalesced scheme re-arms one completion event per disk
        // at dispatch time: pop an event, then immediately schedule that
        // disk's next completion. When the re-armed event lands on an
        // instant where other events already wait, it must sort *after*
        // them — the sequence counter keeps growing monotonically across
        // pops, so re-insertion can never jump the FIFO line.
        let mut q = EventQueue::new();
        q.schedule(t(10), "disk0");
        q.schedule(t(20), "disk1");
        q.schedule(t(20), "disk2");
        let (_, first) = q.pop().unwrap();
        assert_eq!(first, "disk0");
        // disk0 re-arms onto the contended instant t=20.
        q.schedule(t(20), "disk0-rearmed");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["disk1", "disk2", "disk0-rearmed"]);
    }

    #[test]
    fn rearming_across_many_rounds_stays_fifo() {
        // Simulate D disks each re-arming through R rounds of simultaneous
        // completions; within every round the pop order must equal the
        // schedule order of that round.
        const D: usize = 8;
        let mut q = EventQueue::new();
        for d in 0..D {
            q.schedule(t(100), d);
        }
        for round in 1..=5u64 {
            let mut popped = Vec::new();
            for _ in 0..D {
                let (time, d) = q.pop().unwrap();
                assert_eq!(time, t(100 * round));
                popped.push(d);
                q.schedule(t(100 * (round + 1)), d);
            }
            assert_eq!(popped, (0..D).collect::<Vec<_>>(), "round {round}");
        }
    }

    #[test]
    fn scheduling_in_the_past_is_allowed_but_ordered() {
        // The queue itself is order-agnostic; monotonicity is enforced by
        // the Executive.
        let mut q = EventQueue::new();
        q.schedule(t(100), "later");
        q.schedule(t(1), "earlier");
        assert_eq!(q.pop().unwrap().1, "earlier");
    }
}
