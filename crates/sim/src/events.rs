//! The future-event list.

use crate::SimTime;

/// Key value marking a free tournament slot. Compares greater than every
/// real key: a real key would need both `time == u64::MAX` nanoseconds
/// (half a millennium of simulated time) and `seq == u64::MAX`, which
/// `schedule` debug-asserts against.
const EMPTY: u128 = u128::MAX;

/// Largest slot count served by the flat min-scan. Measured on the rearm
/// cycle (pop + reschedule, release build): a contiguous scan beats the
/// tournament's serial root-path replay up to a few dozen slots — the scan
/// is branch-predictable and pipelines, the tree walk is a dependent-load
/// chain — with the crossover between 35 and 67 slots. Real simulator runs
/// lean further toward the scan (completion keys are structured, not
/// adversarial), so the switch is set at the top of the measured tie zone.
/// The merge simulator's event list holds D + W + 1 entries, so paper-scale
/// scenarios (D ≤ 32) stay on the scan and wide-array sweeps (D > 61) get
/// the O(log S) tournament.
const LINEAR_MAX_SLOTS: usize = 64;

/// Small-queue store: a flat, unordered vector popped by a linear minimum
/// scan over the packed keys.
struct LinearSlots<E> {
    slots: Vec<(u128, E)>,
}

impl<E> LinearSlots<E> {
    /// Index of the smallest key (unique: seq numbers never repeat, so
    /// neither do keys), or `None` if empty.
    fn earliest(&self) -> Option<usize> {
        let mut best = 0;
        for i in 1..self.slots.len() {
            if self.slots[i].0 < self.slots[best].0 {
                best = i;
            }
        }
        (!self.slots.is_empty()).then_some(best)
    }
}

/// One tournament node: the winning key of the subtree and the slot it
/// belongs to. Internal nodes replicate the winning leaf so a root-path
/// replay never leaves the flat node array.
#[derive(Clone, Copy)]
struct Node {
    key: u128,
    slot: u32,
}

/// Large-queue store: pending events live in stable slots and an indexed
/// tournament (a winner tree over the slots' keys, in 1-based heap layout)
/// tracks the minimum. Scheduling or popping touches one leaf and replays
/// its leaf-to-root path — O(log S) single-`u128` compares.
struct Tournament<E> {
    /// Size `2 * leaves`: `nodes[0]` is padding, `1..leaves` are internal
    /// winners, `leaves + s` is slot `s`'s leaf (key `EMPTY` when free).
    nodes: Vec<Node>,
    /// Per-slot event payloads; `None` marks a free slot.
    events: Vec<Option<E>>,
    /// Free slot indices, reused LIFO.
    free: Vec<u32>,
    /// Number of leaves — always a power of two.
    leaves: usize,
    len: usize,
}

impl<E> Tournament<E> {
    fn with_leaves(leaves: usize) -> Self {
        debug_assert!(leaves.is_power_of_two());
        let mut t = Tournament {
            nodes: Vec::new(),
            events: Vec::new(),
            free: Vec::new(),
            leaves: 0,
            len: 0,
        };
        t.grow_to(leaves);
        t
    }

    /// Grows the slot arrays to `new_leaves` (a power of two) and rebuilds
    /// the tournament. Cold path: the simulator pre-sizes the queue and
    /// never grows it in steady state.
    #[cold]
    #[inline(never)]
    fn grow_to(&mut self, new_leaves: usize) {
        debug_assert!(new_leaves.is_power_of_two() && new_leaves >= self.leaves);
        let old = self.leaves;
        self.events.resize_with(new_leaves, || None);
        // Reserve the free list for every slot so post-pop pushes never
        // allocate; hand out low slots first (cosmetic — keys decide order).
        self.free.reserve(new_leaves - self.free.len());
        self.free.extend((old..new_leaves).rev().map(|s| s as u32));
        let mut nodes = vec![Node { key: EMPTY, slot: 0 }; 2 * new_leaves];
        for (s, leaf) in nodes[new_leaves..].iter_mut().enumerate() {
            leaf.key = if s < old { self.nodes[old + s].key } else { EMPTY };
            leaf.slot = s as u32;
        }
        self.nodes = nodes;
        self.leaves = new_leaves;
        self.rebuild();
    }

    /// Recomputes every internal winner bottom-up (children of node `n`
    /// sit at `2n`/`2n + 1 > n`, so reverse iteration visits them first).
    fn rebuild(&mut self) {
        for node in (1..self.leaves).rev() {
            let l = self.nodes[2 * node];
            let r = self.nodes[2 * node + 1];
            self.nodes[node] = if l.key <= r.key { l } else { r };
        }
    }

    /// Sets `slot`'s leaf key and recomputes the winner on its leaf-to-root
    /// path: one compare per level, all within the flat node array.
    #[inline]
    fn replay(&mut self, slot: usize, key: u128) {
        let leaf = self.leaves + slot;
        self.nodes[leaf].key = key;
        let mut node = leaf >> 1;
        while node >= 1 {
            let l = self.nodes[2 * node];
            let r = self.nodes[2 * node + 1];
            self.nodes[node] = if l.key <= r.key { l } else { r };
            node >>= 1;
        }
    }

    #[inline(never)]
    fn schedule(&mut self, key: u128, event: E) {
        let slot = match self.free.pop() {
            Some(s) => s as usize,
            None => {
                self.grow_to(self.leaves * 2);
                self.free.pop().expect("grow_to freed slots") as usize
            }
        };
        self.events[slot] = Some(event);
        self.len += 1;
        self.replay(slot, key);
    }

    #[inline(never)]
    fn pop(&mut self) -> Option<(u128, E)> {
        let root = self.nodes[1];
        if root.key == EMPTY {
            return None;
        }
        let slot = root.slot as usize;
        let event = self.events[slot].take().expect("winner slot occupied");
        self.free.push(root.slot);
        self.len -= 1;
        self.replay(slot, EMPTY);
        Some((root.key, event))
    }
}

/// A deterministic future-event list.
///
/// Events are popped in non-decreasing time order; events scheduled for the
/// same instant are popped in the order they were scheduled (FIFO). This
/// stability is what makes whole simulation runs bit-reproducible.
///
/// The fire time (nanoseconds, high 64 bits) and the insertion sequence
/// number (low 64 bits) are packed into one `u128` key, so ordering by
/// `key` is exactly lexicographic `(time, seq)` and every winner decision
/// is a single integer compare. Keys are unique (sequence numbers never
/// repeat), so the minimum is unique and the pop order is identical across
/// any correct priority queue over the same keys — which is what lets the
/// queue pick its store by size without changing a single simulation bit:
///
/// * up to [`LINEAR_MAX_SLOTS`] pending events, a flat vector popped by a
///   contiguous linear min-scan (branch-predictable, pipelines well — the
///   fastest structure at the merge simulator's O(D) event bound);
/// * above that, an indexed tournament (winner tree) whose schedule/pop
///   replay one leaf-to-root path in O(log S) compares, so very wide disk
///   arrays don't pay an O(D) scan per event.
///
/// The store is chosen by capacity and migrates transparently on growth.
///
/// # Examples
///
/// ```
/// use pm_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(20), "b");
/// q.schedule(SimTime::from_nanos(10), "a");
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "b")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    store: Store<E>,
    next_seq: u64,
}

enum Store<E> {
    Linear(LinearSlots<E>),
    Tree(Tournament<E>),
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            store: Store::Linear(LinearSlots { slots: Vec::new() }),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` pending events.
    ///
    /// The merge simulator's event list is O(D): one completion event per
    /// busy disk (each disk re-arms its *next* completion on dispatch)
    /// plus one CPU event. Sizing the list up front keeps the steady-state
    /// hot path free of allocations and picks the store — min-scan vector
    /// at that scale, tournament for very wide arrays — once.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let store = if capacity <= LINEAR_MAX_SLOTS {
            Store::Linear(LinearSlots {
                slots: Vec::with_capacity(capacity),
            })
        } else {
            Store::Tree(Tournament::with_leaves(capacity.next_power_of_two()))
        };
        EventQueue { store, next_seq: 0 }
    }

    /// Ensures room for at least `additional` more pending events,
    /// migrating from the min-scan store to the tournament if the new
    /// bound crosses [`LINEAR_MAX_SLOTS`].
    pub fn reserve(&mut self, additional: usize) {
        let want = self.len() + additional;
        match &mut self.store {
            Store::Linear(lin) if want <= LINEAR_MAX_SLOTS => {
                lin.slots.reserve(additional);
            }
            Store::Linear(_) => self.migrate_to_tree(want.next_power_of_two()),
            Store::Tree(tree) => {
                if want > tree.leaves {
                    tree.grow_to(want.next_power_of_two());
                }
            }
        }
    }

    /// Number of pending events the queue can hold without reallocating.
    #[must_use]
    pub fn capacity(&self) -> usize {
        match &self.store {
            Store::Linear(lin) => lin.slots.capacity(),
            Store::Tree(tree) => tree.leaves,
        }
    }

    /// Moves every pending event into a tournament with `leaves` slots.
    /// Keys (and therefore pop order) are preserved verbatim.
    #[cold]
    #[inline(never)]
    fn migrate_to_tree(&mut self, leaves: usize) {
        let mut tree = Tournament::with_leaves(leaves.max(2));
        if let Store::Linear(lin) = &mut self.store {
            for (key, event) in lin.slots.drain(..) {
                tree.schedule(key, event);
            }
        }
        self.store = Store::Tree(tree);
    }

    /// Schedules `event` to fire at absolute time `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let key = (u128::from(time.as_nanos()) << 64) | u128::from(seq);
        debug_assert_ne!(key, EMPTY, "key collides with the free-slot sentinel");
        match &mut self.store {
            Store::Linear(lin) => {
                if lin.slots.len() == LINEAR_MAX_SLOTS {
                    self.migrate_to_tree(2 * LINEAR_MAX_SLOTS);
                    let Store::Tree(tree) = &mut self.store else {
                        unreachable!("just migrated")
                    };
                    tree.schedule(key, event);
                } else {
                    lin.slots.push((key, event));
                }
            }
            Store::Tree(tree) => tree.schedule(key, event),
        }
    }

    /// Removes and returns the earliest event, if any. Unique keys make the
    /// minimum unique, so ties within an instant pop FIFO regardless of
    /// store.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (key, event) = match &mut self.store {
            Store::Linear(lin) => {
                let idx = lin.earliest()?;
                lin.slots.swap_remove(idx)
            }
            Store::Tree(tree) => tree.pop()?,
        };
        Some((SimTime::from_nanos((key >> 64) as u64), event))
    }

    /// Fire time of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        let key = match &self.store {
            Store::Linear(lin) => lin.slots[lin.earliest()?].0,
            Store::Tree(tree) => {
                let root = tree.nodes[1];
                if root.key == EMPTY {
                    return None;
                }
                root.key
            }
        };
        Some(SimTime::from_nanos((key >> 64) as u64))
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.store {
            Store::Linear(lin) => lin.slots.len(),
            Store::Tree(tree) => tree.len,
        }
    }

    /// `true` if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        match &mut self.store {
            Store::Linear(lin) => lin.slots.clear(),
            Store::Tree(tree) => {
                if tree.len == 0 {
                    return;
                }
                for slot in 0..tree.leaves {
                    if tree.events[slot].take().is_some() {
                        tree.free.push(slot as u32);
                    }
                }
                for node in tree.nodes.iter_mut() {
                    node.key = EMPTY;
                }
                tree.len = 0;
            }
        }
    }

    /// `true` when the tournament store is active (diagnostics/tests).
    #[must_use]
    pub fn is_tournament(&self) -> bool {
        matches!(self.store, Store::Tree(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        assert_eq!(q.pop(), Some((t(10), 1)));
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(30), 3)));
        assert!(q.is_empty());
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        // 100 ties crosses the linear→tournament migration mid-stream.
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        assert!(q.is_tournament());
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn interleaved_times_and_ties() {
        let mut q = EventQueue::new();
        q.schedule(t(10), "a");
        q.schedule(t(5), "b");
        q.schedule(t(10), "c");
        q.schedule(t(5), "d");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["b", "d", "a", "c"]);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.schedule(t(7), ());
        assert_eq!(q.peek_time(), Some(t(7)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(7), ())));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(t(1), ());
        q.schedule(t(2), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        // The queue must stay usable after a clear.
        q.schedule(t(3), ());
        assert_eq!(q.pop(), Some((t(3), ())));
    }

    #[test]
    fn with_capacity_preallocates_and_reserve_grows() {
        let mut q: EventQueue<u32> = EventQueue::with_capacity(8);
        assert!(q.capacity() >= 8);
        let cap = q.capacity();
        for i in 0..8 {
            q.schedule(t(i), i as u32);
        }
        assert_eq!(q.capacity(), cap, "scheduling within capacity must not grow");
        q.reserve(100);
        assert!(q.capacity() >= 108);
        assert_eq!(q.pop(), Some((t(0), 0)));
    }

    #[test]
    fn store_selection_follows_capacity() {
        let small: EventQueue<()> = EventQueue::with_capacity(LINEAR_MAX_SLOTS);
        assert!(!small.is_tournament(), "O(D) bound stays on the min-scan");
        let large: EventQueue<()> = EventQueue::with_capacity(LINEAR_MAX_SLOTS + 1);
        assert!(large.is_tournament(), "wide arrays get the tournament");
    }

    #[test]
    fn fifo_tie_break_survives_coalesced_rearming() {
        // The O(D) coalesced scheme re-arms one completion event per disk
        // at dispatch time: pop an event, then immediately schedule that
        // disk's next completion. When the re-armed event lands on an
        // instant where other events already wait, it must sort *after*
        // them — the sequence counter keeps growing monotonically across
        // pops, so re-insertion can never jump the FIFO line.
        let mut q = EventQueue::new();
        q.schedule(t(10), "disk0");
        q.schedule(t(20), "disk1");
        q.schedule(t(20), "disk2");
        let (_, first) = q.pop().unwrap();
        assert_eq!(first, "disk0");
        // disk0 re-arms onto the contended instant t=20.
        q.schedule(t(20), "disk0-rearmed");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["disk1", "disk2", "disk0-rearmed"]);
    }

    #[test]
    fn rearming_across_many_rounds_stays_fifo() {
        // Simulate D disks each re-arming through R rounds of simultaneous
        // completions; within every round the pop order must equal the
        // schedule order of that round. Run once per store.
        for cap in [8, 256] {
            const D: usize = 8;
            let mut q = EventQueue::with_capacity(cap);
            assert_eq!(q.is_tournament(), cap > LINEAR_MAX_SLOTS);
            for d in 0..D {
                q.schedule(t(100), d);
            }
            for round in 1..=5u64 {
                let mut popped = Vec::new();
                for _ in 0..D {
                    let (time, d) = q.pop().unwrap();
                    assert_eq!(time, t(100 * round));
                    popped.push(d);
                    q.schedule(t(100 * (round + 1)), d);
                }
                assert_eq!(popped, (0..D).collect::<Vec<_>>(), "round {round}");
            }
        }
    }

    #[test]
    fn scheduling_in_the_past_is_allowed_but_ordered() {
        // The queue itself is order-agnostic; monotonicity is enforced by
        // the Executive.
        let mut q = EventQueue::new();
        q.schedule(t(100), "later");
        q.schedule(t(1), "earlier");
        assert_eq!(q.pop().unwrap().1, "earlier");
    }

    #[test]
    fn migration_preserves_pending_order() {
        // Pack the linear store to its limit, then keep scheduling so it
        // migrates to the tournament mid-flight; pop order must still equal
        // sorted-(time, seq), including ties that straddle the migration.
        let mut q = EventQueue::with_capacity(4);
        let n = LINEAR_MAX_SLOTS + 40;
        let times: Vec<u64> = (0..n).map(|i| ((i * 7919) % 23) as u64).collect();
        for (i, &ns) in times.iter().enumerate() {
            q.schedule(t(ns), i);
        }
        assert!(q.is_tournament());
        let mut expect: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &ns)| (ns, i)).collect();
        expect.sort();
        let got: Vec<(u64, usize)> = std::iter::from_fn(|| q.pop())
            .map(|(time, i)| (time.as_nanos(), i))
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn tournament_growth_preserves_pending_order() {
        // Start at the smallest tournament and force rebuilds mid-flight.
        let mut q = EventQueue::with_capacity(LINEAR_MAX_SLOTS + 1);
        assert!(q.is_tournament());
        let n = 5 * LINEAR_MAX_SLOTS;
        let times: Vec<u64> = (0..n).map(|i| ((i * 104729) % 31) as u64).collect();
        for (i, &ns) in times.iter().enumerate() {
            q.schedule(t(ns), i);
        }
        let mut expect: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &ns)| (ns, i)).collect();
        expect.sort();
        let got: Vec<(u64, usize)> = std::iter::from_fn(|| q.pop())
            .map(|(time, i)| (time.as_nanos(), i))
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn interleaved_pop_schedule_churn_matches_reference() {
        // Deterministic churn against a naive sorted reference, on both
        // stores: pops interleaved with schedules at colliding instants.
        for cap in [4, 2 * LINEAR_MAX_SLOTS] {
            let mut q = EventQueue::with_capacity(cap);
            let mut reference: Vec<(u64, u64, u32)> = Vec::new(); // (time, seq, id)
            let mut seq = 0u64;
            for wave in 0..6u64 {
                for d in 0..5u32 {
                    // Collide three-of-five on the same instant per wave.
                    let ns = 100 * wave + u64::from(d % 2);
                    q.schedule(t(ns), d);
                    reference.push((ns, seq, d));
                    seq += 1;
                }
                for _ in 0..4 {
                    reference.sort();
                    let (time, id) = q.pop().unwrap();
                    let (ens, _, eid) = reference.remove(0);
                    assert_eq!((time.as_nanos(), id), (ens, eid));
                }
            }
            while !reference.is_empty() {
                reference.sort();
                let (time, id) = q.pop().unwrap();
                let (ens, _, eid) = reference.remove(0);
                assert_eq!((time.as_nanos(), id), (ens, eid));
            }
            assert!(q.is_empty());
        }
    }
}
