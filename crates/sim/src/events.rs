//! The future-event list.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A pending event: fire time plus an insertion sequence number used to
/// break ties FIFO, making simultaneous events deterministic.
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap but we want the earliest event
        // (and among equals, the earliest-scheduled) on top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic future-event list.
///
/// Events are popped in non-decreasing time order; events scheduled for the
/// same instant are popped in the order they were scheduled (FIFO). This
/// stability is what makes whole simulation runs bit-reproducible.
///
/// # Examples
///
/// ```
/// use pm_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(20), "b");
/// q.schedule(SimTime::from_nanos(10), "a");
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "b")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at absolute time `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Fire time of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        assert_eq!(q.pop(), Some((t(10), 1)));
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(30), 3)));
        assert!(q.is_empty());
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn interleaved_times_and_ties() {
        let mut q = EventQueue::new();
        q.schedule(t(10), "a");
        q.schedule(t(5), "b");
        q.schedule(t(10), "c");
        q.schedule(t(5), "d");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["b", "d", "a", "c"]);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.schedule(t(7), ());
        assert_eq!(q.peek_time(), Some(t(7)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(7), ())));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(t(1), ());
        q.schedule(t(2), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn scheduling_in_the_past_is_allowed_but_ordered() {
        // The queue itself is order-agnostic; monotonicity is enforced by
        // the Executive.
        let mut q = EventQueue::new();
        q.schedule(t(100), "later");
        q.schedule(t(1), "earlier");
        assert_eq!(q.pop().unwrap().1, "earlier");
    }
}
