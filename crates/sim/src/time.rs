//! Integer simulated time.
//!
//! All simulated timing in this workspace is expressed in whole nanoseconds.
//! The paper's disk constants are exact in this unit (2.16 ms =
//! 2,160,000 ns; 0.03 ms = 30,000 ns), additions never lose precision, and
//! event ordering never depends on floating-point rounding.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulated clock, in nanoseconds since the
/// start of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A non-negative span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch, `t = 0`.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs an instant from raw nanoseconds.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since the epoch.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in milliseconds (lossy, for reporting).
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1.0e6
    }

    /// This instant expressed in seconds (lossy, for reporting).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1.0e9
    }

    /// Span since an earlier instant.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self`.
    #[must_use]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "since() requires earlier <= self ({} > {})",
            earlier.0,
            self.0
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Later of two instants.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs a span from raw nanoseconds.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Constructs a span from whole microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Constructs a span from whole milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Constructs a span from fractional milliseconds, rounding to the
    /// nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or not finite.
    #[must_use]
    pub fn from_millis_f64(ms: f64) -> Self {
        assert!(ms.is_finite() && ms >= 0.0, "duration must be >= 0, got {ms}");
        SimDuration((ms * 1.0e6).round() as u64)
    }

    /// Raw nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This span in milliseconds (lossy, for reporting).
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1.0e6
    }

    /// This span in seconds (lossy, for reporting).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1.0e9
    }

    /// `true` for the zero-length span.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[must_use]
    pub const fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("simulated time overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("simulated duration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        assert!(self.0 >= rhs.0, "duration subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("simulated duration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_are_exact() {
        assert_eq!(SimDuration::from_millis_f64(2.16).as_nanos(), 2_160_000);
        assert_eq!(SimDuration::from_millis_f64(8.33).as_nanos(), 8_330_000);
        assert_eq!(SimDuration::from_millis_f64(0.03).as_nanos(), 30_000);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(5);
        assert_eq!(t.as_nanos(), 5_000_000);
        let t2 = t + SimDuration::from_micros(1);
        assert_eq!((t2 - t).as_nanos(), 1_000);
        assert_eq!(t2.max(t), t2);
        assert_eq!(t.max(t2), t2);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(3);
        let b = SimDuration::from_millis(1);
        assert_eq!((a - b).as_millis_f64(), 2.0);
        assert_eq!((a + b).as_millis_f64(), 4.0);
        assert_eq!((a * 4).as_millis_f64(), 12.0);
        assert_eq!((a / 3).as_millis_f64(), 1.0);
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    #[should_panic(expected = "earlier <= self")]
    fn since_rejects_future() {
        let t = SimTime::from_nanos(10);
        let _ = t.since(SimTime::from_nanos(20));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn duration_sub_underflow_panics() {
        let _ = SimDuration::from_nanos(1) - SimDuration::from_nanos(2);
    }

    #[test]
    #[should_panic(expected = "must be >= 0")]
    fn negative_millis_rejected() {
        let _ = SimDuration::from_millis_f64(-1.0);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimDuration::from_nanos(1) < SimDuration::from_nanos(2));
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.000ms");
    }

    #[test]
    fn conversions_round_trip() {
        let d = SimDuration::from_millis_f64(16.666667);
        assert!((d.as_millis_f64() - 16.666667).abs() < 1e-9);
        assert!((d.as_secs_f64() - 0.016666667).abs() < 1e-12);
    }
}
