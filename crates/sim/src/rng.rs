//! Self-contained pseudo-random number generation.
//!
//! The simulator owns its generator (xoshiro256\*\* seeded via splitmix64)
//! so that the exact random stream — and therefore every simulation result —
//! is pinned by this crate alone, not by the version of an external RNG
//! crate. An adapter implementing [`rand::TryRng`] (and hence `rand::Rng`)
//! is provided for interop with `rand`-based tooling.

use crate::SimDuration;

/// Deterministic xoshiro256\*\* generator with simulation-oriented variate
/// helpers.
///
/// Outputs are produced through a small refillable draw buffer: the
/// recurrence is advanced [`DRAW_BUFFER_LEN`] steps at a time with the
/// 256-bit state held in registers, and individual draws pop prefetched
/// values. The buffer is purely a batching device — it prefetches the
/// *same* output stream the recurrence produces one step at a time, so
/// every consumer sees bit-identical draws regardless of how calls to the
/// scalar and bulk APIs interleave (pinned by tests against the published
/// xoshiro vectors and a scalar reference).
///
/// # Examples
///
/// ```
/// use pm_sim::SimRng;
///
/// let mut rng = SimRng::seed_from_u64(7);
/// let x = rng.index(10);
/// assert!(x < 10);
/// let u = rng.uniform_f64();
/// assert!((0.0..1.0).contains(&u));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
    /// Prefetched recurrence outputs; `buf[pos..]` are pending draws.
    buf: [u64; DRAW_BUFFER_LEN],
    pos: u8,
}

/// Number of outputs generated per draw-buffer refill.
pub const DRAW_BUFFER_LEN: usize = 16;

#[inline]
fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator whose 256-bit state is expanded from `seed` with
    /// splitmix64 (the seeding procedure recommended by the xoshiro
    /// authors).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng {
            s,
            buf: [0; DRAW_BUFFER_LEN],
            pos: DRAW_BUFFER_LEN as u8,
        }
    }

    /// One step of the xoshiro256\*\* recurrence on a borrowed state. This
    /// is the sole producer of outputs; the draw buffer only batches it.
    #[inline]
    fn step(s: &mut [u64; 4]) -> u64 {
        let result = rotl(s[1].wrapping_mul(5), 7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        result
    }

    /// Refills the draw buffer: advances the recurrence `DRAW_BUFFER_LEN`
    /// steps with the state in locals so the per-step loads and stores of
    /// the scalar path are paid once per batch instead of once per draw.
    #[inline(never)]
    fn refill(&mut self) {
        let mut s = self.s;
        for slot in &mut self.buf {
            *slot = Self::step(&mut s);
        }
        self.s = s;
        self.pos = 0;
    }

    /// Next raw 64-bit output (from the draw buffer; refills as needed).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        if usize::from(self.pos) == DRAW_BUFFER_LEN {
            self.refill();
        }
        let v = self.buf[usize::from(self.pos)];
        self.pos += 1;
        v
    }

    /// Fills `out` with the next `out.len()` raw outputs — exactly the
    /// values the same number of [`SimRng::next_u64`] calls would return,
    /// in the same order. Pending buffered draws are drained first; the
    /// remainder is generated straight into `out` without touching the
    /// buffer.
    pub fn fill_u64(&mut self, out: &mut [u64]) {
        let pending = DRAW_BUFFER_LEN - usize::from(self.pos);
        let head = pending.min(out.len());
        out[..head].copy_from_slice(&self.buf[usize::from(self.pos)..usize::from(self.pos) + head]);
        self.pos += head as u8;
        let mut s = self.s;
        for slot in &mut out[head..] {
            *slot = Self::step(&mut s);
        }
        self.s = s;
    }

    /// Uniform value in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
    }

    /// Uniform index in `[0, n)` using Lemire's unbiased method.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index() requires a non-empty range");
        let n = n as u64;
        // Lemire's multiply-shift rejection method: unbiased and fast.
        loop {
            let x = self.next_u64();
            let m = x as u128 * n as u128;
            let low = m as u64;
            if low >= n {
                // Fast path: no bias possible.
                return (m >> 64) as usize;
            }
            let threshold = n.wrapping_neg() % n;
            if low >= threshold {
                return (m >> 64) as usize;
            }
        }
    }

    /// Uniform value in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn range_u64(&mut self, low: u64, high: u64) -> u64 {
        assert!(low < high, "range_u64 requires low < high");
        let span = high - low;
        // Reuse the unbiased index path. span fits usize on 64-bit targets;
        // on smaller targets fall back to rejection over u64.
        if span <= usize::MAX as u64 {
            low + self.index(span as usize) as u64
        } else {
            loop {
                let x = self.next_u64();
                if x < span {
                    return low + x;
                }
            }
        }
    }

    /// Uniformly chosen element of `slice`.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        &slice[self.index(slice.len())]
    }

    /// Uniform duration in `[SimDuration::ZERO, limit)`.
    ///
    /// This is the rotational-latency variate: the paper models latency as
    /// uniform over one full revolution, with mean `R` (half a revolution).
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero.
    pub fn uniform_duration(&mut self, limit: SimDuration) -> SimDuration {
        assert!(!limit.is_zero(), "uniform_duration requires a positive limit");
        SimDuration::from_nanos(self.range_u64(0, limit.as_nanos()))
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Derives an independent child generator. Used to give each simulation
    /// trial its own stream from one top-level seed.
    #[must_use]
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.next_u64())
    }
}

/// Pre-derives the `n`-seed sequence a master seed expands to.
///
/// This is *the* seed-derivation procedure of the multi-trial drivers:
/// trial `i` of a configuration with master seed `s` always runs with seed
/// `derive_seeds(s, n)[i]` — the `i`-th output of a fresh
/// [`SimRng::seed_from_u64`]`(s)` stream. Exposing it lets parallel trial
/// runners hand every worker its exact seed up front (instead of
/// threading one generator through a sequential loop), and lets tests
/// assert the sequence bit-for-bit.
///
/// # Examples
///
/// ```
/// use pm_sim::{derive_seeds, SimRng};
///
/// let seeds = derive_seeds(1992, 3);
/// let mut master = SimRng::seed_from_u64(1992);
/// assert_eq!(seeds, vec![master.next_u64(), master.next_u64(), master.next_u64()]);
/// ```
#[must_use]
pub fn derive_seeds(master: u64, n: usize) -> Vec<u64> {
    let mut rng = SimRng::seed_from_u64(master);
    (0..n).map(|_| rng.next_u64()).collect()
}

/// Infallible [`rand::TryRng`] implementation; via the blanket impl in
/// `rand_core` this also makes `SimRng` a [`rand::Rng`], so it can drive any
/// `rand`-based tooling (e.g. `proptest` strategies).
impl rand::TryRng for SimRng {
    type Error = std::convert::Infallible;

    fn try_next_u32(&mut self) -> Result<u32, Self::Error> {
        Ok((self.next_u64() >> 32) as u32)
    }

    fn try_next_u64(&mut self) -> Result<u64, Self::Error> {
        Ok(SimRng::next_u64(self))
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Self::Error> {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&SimRng::next_u64(self).to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = SimRng::next_u64(self).to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vectors() {
        // Published splitmix64 test vector (seed 0).
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut s), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn xoshiro_reference_vectors() {
        // Cross-checked against an independent implementation of
        // xoshiro256** seeded from splitmix64(12345).
        let mut rng = SimRng::seed_from_u64(12345);
        assert_eq!(rng.next_u64(), 0xBE6A_3637_4160_D49B);
        assert_eq!(rng.next_u64(), 0x214A_AA06_37A6_88C6);
        assert_eq!(rng.next_u64(), 0xF69D_16DE_9954_D388);
        assert_eq!(rng.next_u64(), 0x0C60_048C_4E96_E033);
    }

    #[test]
    fn determinism_same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(99);
        let mut b = SimRng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let u = rng.uniform_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_f64_mean_is_half() {
        let mut rng = SimRng::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.uniform_f64()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn index_covers_range_uniformly() {
        let mut rng = SimRng::seed_from_u64(5);
        let mut counts = [0u32; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[rng.index(7)] += 1;
        }
        for &c in &counts {
            // Each bucket should be within 5% of n/7.
            let expected = n as f64 / 7.0;
            assert!((f64::from(c) - expected).abs() < 0.05 * expected, "{counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "non-empty range")]
    fn index_zero_panics() {
        SimRng::seed_from_u64(0).index(0);
    }

    #[test]
    fn range_u64_bounds() {
        let mut rng = SimRng::seed_from_u64(6);
        for _ in 0..1_000 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn uniform_duration_mean_is_half_limit() {
        let mut rng = SimRng::seed_from_u64(7);
        let limit = SimDuration::from_millis_f64(16.66);
        let n = 50_000;
        let total: f64 = (0..n)
            .map(|_| rng.uniform_duration(limit).as_millis_f64())
            .sum();
        let mean = total / f64::from(n);
        assert!((mean - 8.33).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn choose_returns_element() {
        let mut rng = SimRng::seed_from_u64(8);
        let items = [10, 20, 30];
        for _ in 0..50 {
            assert!(items.contains(rng.choose(&items)));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn derive_seeds_matches_incremental_stream() {
        let mut master = SimRng::seed_from_u64(1992);
        let incremental: Vec<u64> = (0..10).map(|_| master.next_u64()).collect();
        assert_eq!(derive_seeds(1992, 10), incremental);
        assert!(derive_seeds(1992, 0).is_empty());
        // Prefixes agree: trial i's seed is independent of the trial count.
        assert_eq!(derive_seeds(1992, 4), incremental[..4]);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = SimRng::seed_from_u64(10);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    /// Scalar reference: the textbook one-step-per-call xoshiro256**, with
    /// no buffering. The batched generator must reproduce this stream
    /// exactly no matter how scalar and bulk draws interleave.
    struct ScalarRef {
        s: [u64; 4],
    }

    impl ScalarRef {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            ScalarRef {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        fn next_u64(&mut self) -> u64 {
            SimRng::step(&mut self.s)
        }
    }

    #[test]
    fn buffered_draws_match_scalar_reference() {
        let mut buffered = SimRng::seed_from_u64(42);
        let mut scalar = ScalarRef::seed_from_u64(42);
        // Cross several refill boundaries.
        for i in 0..(5 * DRAW_BUFFER_LEN + 3) {
            assert_eq!(buffered.next_u64(), scalar.next_u64(), "draw {i}");
        }
    }

    #[test]
    fn fill_u64_matches_scalar_reference() {
        let mut buffered = SimRng::seed_from_u64(43);
        let mut scalar = ScalarRef::seed_from_u64(43);
        // Bulk sizes that start empty, end mid-buffer, and span refills.
        for len in [1, DRAW_BUFFER_LEN - 1, DRAW_BUFFER_LEN, 3 * DRAW_BUFFER_LEN + 5, 0, 2] {
            let mut out = vec![0u64; len];
            buffered.fill_u64(&mut out);
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v, scalar.next_u64(), "len={len} draw {i}");
            }
        }
    }

    #[test]
    fn interleaved_scalar_and_bulk_draws_share_one_stream() {
        let mut mixed = SimRng::seed_from_u64(44);
        let mut scalar = ScalarRef::seed_from_u64(44);
        for round in 0..20 {
            // A few scalar draws...
            for i in 0..round % 7 {
                assert_eq!(mixed.next_u64(), scalar.next_u64(), "round {round} scalar {i}");
            }
            // ...then a bulk fill; the stream must not skip or repeat.
            let mut out = vec![0u64; (round * 3) % (DRAW_BUFFER_LEN + 4)];
            mixed.fill_u64(&mut out);
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v, scalar.next_u64(), "round {round} bulk {i}");
            }
        }
    }

    #[test]
    fn clone_preserves_pending_buffered_draws() {
        let mut a = SimRng::seed_from_u64(45);
        let _ = a.next_u64(); // leave the clone mid-buffer
        let mut b = a.clone();
        for _ in 0..(2 * DRAW_BUFFER_LEN) {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rand_core_adapter_fill_bytes() {
        use rand::Rng as _;
        let mut rng = SimRng::seed_from_u64(11);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
