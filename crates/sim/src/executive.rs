//! The simulation executive: clock + future-event list.

use crate::{EventQueue, SimDuration, SimTime};

/// Drives a simulation: owns the clock and the event list, enforces
/// monotonically non-decreasing time, and counts dispatched events.
///
/// Components schedule events with [`Executive::schedule_at`] /
/// [`Executive::schedule_in`]; the main loop repeatedly calls
/// [`Executive::next`], which advances the clock to the fire time and hands
/// the event back for dispatch. This is the calendar-queue equivalent of
/// CSIM's process scheduler.
///
/// # Examples
///
/// ```
/// use pm_sim::{Executive, SimDuration};
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { Ping, Pong }
///
/// let mut exec = Executive::new();
/// exec.schedule_in(SimDuration::from_millis(2), Ev::Pong);
/// exec.schedule_in(SimDuration::from_millis(1), Ev::Ping);
/// assert_eq!(exec.next(), Some(Ev::Ping));
/// assert_eq!(exec.now().as_millis_f64(), 1.0);
/// assert_eq!(exec.next(), Some(Ev::Pong));
/// assert_eq!(exec.next(), None);
/// ```
pub struct Executive<E> {
    queue: EventQueue<E>,
    now: SimTime,
    dispatched: u64,
}

impl<E> Default for Executive<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Executive<E> {
    /// Creates an executive with the clock at `t = 0`.
    #[must_use]
    pub fn new() -> Self {
        Executive {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            dispatched: 0,
        }
    }

    /// Creates an executive whose event list has room for `capacity`
    /// pending events, so a simulation with a known event-list bound
    /// (O(D) for the merge simulator) never reallocates it.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Executive {
            queue: EventQueue::with_capacity(capacity),
            now: SimTime::ZERO,
            dispatched: 0,
        }
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    #[must_use]
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Number of pending events.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` at the absolute instant `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the simulated past.
    pub fn schedule_at(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {} < {}",
            time.as_nanos(),
            self.now.as_nanos()
        );
        self.queue.schedule(time, event);
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.queue.schedule(self.now + delay, event);
    }

    /// Advances the clock to the next event and returns it, or `None` when
    /// the event list is exhausted (simulation complete).
    // Deliberately named like `Iterator::next`: the executive *is* a
    // stream of events, but implementing `Iterator` would hide the clock
    // side effect behind trait genericity.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<E> {
        let (time, event) = self.queue.pop()?;
        debug_assert!(time >= self.now, "event list produced a past event");
        self.now = time;
        self.dispatched += 1;
        Some(event)
    }

    /// Fire time of the next pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let mut exec: Executive<u32> = Executive::new();
        exec.schedule_in(SimDuration::from_millis(5), 1);
        exec.schedule_in(SimDuration::from_millis(3), 2);
        assert_eq!(exec.next(), Some(2));
        let t1 = exec.now();
        assert_eq!(exec.next(), Some(1));
        assert!(exec.now() >= t1);
        assert_eq!(exec.dispatched(), 2);
    }

    #[test]
    fn schedule_relative_to_advanced_clock() {
        let mut exec: Executive<&str> = Executive::new();
        exec.schedule_in(SimDuration::from_millis(1), "first");
        exec.next();
        exec.schedule_in(SimDuration::from_millis(1), "second");
        exec.next();
        assert_eq!(exec.now().as_millis_f64(), 2.0);
    }

    #[test]
    fn empty_executive_is_done() {
        let mut exec: Executive<()> = Executive::new();
        assert_eq!(exec.next(), None);
        assert_eq!(exec.pending(), 0);
        assert_eq!(exec.peek_time(), None);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut exec: Executive<()> = Executive::new();
        exec.schedule_in(SimDuration::from_millis(10), ());
        exec.next();
        exec.schedule_at(SimTime::from_nanos(1), ());
    }

    #[test]
    fn zero_delay_event_fires_now() {
        let mut exec: Executive<&str> = Executive::new();
        exec.schedule_in(SimDuration::from_millis(4), "later");
        exec.next();
        exec.schedule_in(SimDuration::ZERO, "now");
        assert_eq!(exec.next(), Some("now"));
        assert_eq!(exec.now().as_millis_f64(), 4.0);
    }

    #[test]
    fn events_at_same_time_fifo_through_executive() {
        let mut exec: Executive<u32> = Executive::new();
        for i in 0..10 {
            exec.schedule_at(SimTime::from_nanos(100), i);
        }
        for i in 0..10 {
            assert_eq!(exec.next(), Some(i));
        }
    }
}
