//! Property-based tests of the simulation kernel.

use proptest::prelude::*;

use pm_sim::{EventQueue, Executive, SimDuration, SimRng, SimTime};

proptest! {
    /// Events always pop in non-decreasing time order, and equal times pop
    /// in scheduling order.
    #[test]
    fn event_queue_pops_sorted_and_stable(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut popped: Vec<(SimTime, usize)> = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    /// The executive clock never runs backwards.
    #[test]
    fn executive_clock_is_monotone(delays in prop::collection::vec(0u64..10_000, 1..100)) {
        let mut exec: Executive<usize> = Executive::new();
        for (i, &d) in delays.iter().enumerate() {
            exec.schedule_in(SimDuration::from_nanos(d), i);
        }
        let mut last = SimTime::ZERO;
        while exec.next().is_some() {
            prop_assert!(exec.now() >= last);
            last = exec.now();
        }
        prop_assert_eq!(exec.dispatched(), delays.len() as u64);
    }

    /// `index(n)` stays in bounds for any seed and n.
    #[test]
    fn rng_index_in_bounds(seed in any::<u64>(), n in 1usize..10_000) {
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(rng.index(n) < n);
        }
    }

    /// `uniform_duration` stays below its limit.
    #[test]
    fn rng_uniform_duration_in_bounds(seed in any::<u64>(), limit_ns in 1u64..10_000_000) {
        let mut rng = SimRng::seed_from_u64(seed);
        let limit = SimDuration::from_nanos(limit_ns);
        for _ in 0..50 {
            prop_assert!(rng.uniform_duration(limit) < limit);
        }
    }

    /// Shuffle always yields a permutation.
    #[test]
    fn rng_shuffle_is_permutation(seed in any::<u64>(), len in 0usize..200) {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut v: Vec<usize> = (0..len).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..len).collect::<Vec<_>>());
    }

    /// Time arithmetic round-trips: (t + d) - t == d.
    #[test]
    fn time_arithmetic_round_trips(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let time = SimTime::from_nanos(t);
        let dur = SimDuration::from_nanos(d);
        prop_assert_eq!((time + dur) - time, dur);
    }
}
