//! Property-based tests of the simulation kernel.

use proptest::prelude::*;

use pm_sim::{EventQueue, Executive, SimDuration, SimRng, SimTime};

proptest! {
    /// Events always pop in non-decreasing time order, and equal times pop
    /// in scheduling order.
    #[test]
    fn event_queue_pops_sorted_and_stable(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut popped: Vec<(SimTime, usize)> = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    /// The executive clock never runs backwards.
    #[test]
    fn executive_clock_is_monotone(delays in prop::collection::vec(0u64..10_000, 1..100)) {
        let mut exec: Executive<usize> = Executive::new();
        for (i, &d) in delays.iter().enumerate() {
            exec.schedule_in(SimDuration::from_nanos(d), i);
        }
        let mut last = SimTime::ZERO;
        while exec.next().is_some() {
            prop_assert!(exec.now() >= last);
            last = exec.now();
        }
        prop_assert_eq!(exec.dispatched(), delays.len() as u64);
    }

    /// `index(n)` stays in bounds for any seed and n.
    #[test]
    fn rng_index_in_bounds(seed in any::<u64>(), n in 1usize..10_000) {
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(rng.index(n) < n);
        }
    }

    /// `uniform_duration` stays below its limit.
    #[test]
    fn rng_uniform_duration_in_bounds(seed in any::<u64>(), limit_ns in 1u64..10_000_000) {
        let mut rng = SimRng::seed_from_u64(seed);
        let limit = SimDuration::from_nanos(limit_ns);
        for _ in 0..50 {
            prop_assert!(rng.uniform_duration(limit) < limit);
        }
    }

    /// Shuffle always yields a permutation.
    #[test]
    fn rng_shuffle_is_permutation(seed in any::<u64>(), len in 0usize..200) {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut v: Vec<usize> = (0..len).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..len).collect::<Vec<_>>());
    }

    /// Tournament winner selection is equivalent to a linear min-scan:
    /// for an arbitrary interleaving of schedules and pops, the
    /// tournament-backed queue (large capacity), the linear-backed queue
    /// (small capacity), and a naive reference that scans all pending
    /// events for the minimum `(time, insertion order)` all pop the same
    /// winners in the same FIFO-tie-broken order.
    #[test]
    fn tournament_matches_linear_min_scan(
        ops in prop::collection::vec((0u64..500, 0usize..3), 1..200)
    ) {
        let mut linear = EventQueue::new();
        let mut tree = EventQueue::with_capacity(256);
        prop_assert!(!linear.is_tournament());
        prop_assert!(tree.is_tournament());
        // Naive reference: all pending events, winner by full min-scan.
        let mut reference: Vec<(u64, usize)> = Vec::new();
        let mut next_id = 0usize;
        let drain = |n: usize,
                         linear: &mut EventQueue<usize>,
                         tree: &mut EventQueue<usize>,
                         reference: &mut Vec<(u64, usize)>|
         -> Result<(), TestCaseError> {
            for _ in 0..n {
                let expect = reference
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &(t, id))| (t, id))
                    .map(|(i, &(t, id))| (i, t, id));
                let a = linear.pop();
                let b = tree.pop();
                match expect {
                    None => {
                        prop_assert!(a.is_none() && b.is_none());
                    }
                    Some((i, t, id)) => {
                        reference.remove(i);
                        let want = Some((SimTime::from_nanos(t), id));
                        prop_assert_eq!(a, want, "linear vs min-scan");
                        prop_assert_eq!(b, want, "tournament vs min-scan");
                    }
                }
            }
            Ok(())
        };
        for &(time, pops) in &ops {
            linear.schedule(SimTime::from_nanos(time), next_id);
            tree.schedule(SimTime::from_nanos(time), next_id);
            reference.push((time, next_id));
            next_id += 1;
            drain(pops, &mut linear, &mut tree, &mut reference)?;
        }
        drain(ops.len() + 2, &mut linear, &mut tree, &mut reference)?;
        prop_assert!(linear.is_empty() && tree.is_empty());
    }

    /// Batched draws reproduce the scalar draw sequence exactly: any
    /// interleaving of `fill_u64` bulk requests and scalar `next_u64`
    /// calls yields the same stream as scalar draws alone.
    #[test]
    fn batched_rng_draws_match_scalar_sequence(
        seed in any::<u64>(),
        chunks in prop::collection::vec(0usize..40, 1..30)
    ) {
        let mut batched = SimRng::seed_from_u64(seed);
        let mut scalar = SimRng::seed_from_u64(seed);
        for (round, &len) in chunks.iter().enumerate() {
            if round % 2 == 0 {
                let mut out = vec![0u64; len];
                batched.fill_u64(&mut out);
                for (i, &v) in out.iter().enumerate() {
                    prop_assert_eq!(v, scalar.next_u64(), "bulk round {} draw {}", round, i);
                }
            } else {
                for i in 0..len {
                    prop_assert_eq!(
                        batched.next_u64(),
                        scalar.next_u64(),
                        "scalar round {} draw {}",
                        round,
                        i
                    );
                }
            }
        }
    }

    /// Time arithmetic round-trips: (t + d) - t == d.
    #[test]
    fn time_arithmetic_round_trips(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let time = SimTime::from_nanos(t);
        let dur = SimDuration::from_nanos(d);
        prop_assert_eq!((time + dur) - time, dur);
    }

    /// Crossing the 64-slot linear→tournament migration boundary with
    /// events pending — upward (a schedule triggers the migration) and
    /// back down (pops drain the migrated store below the threshold,
    /// interleaved with more schedules) — preserves the exact
    /// `(time, insertion order)` pop sequence of a naive min-scan.
    #[test]
    fn migration_boundary_preserves_pop_order(
        first_pushes in 70usize..120,
        phases in prop::collection::vec((0u64..500, 0usize..90, 1usize..90), 2..6)
    ) {
        // Occupancy bound that flips the store (events.rs
        // LINEAR_MAX_SLOTS), pinned by capacity probes below.
        const BOUNDARY: usize = 64;
        let small: EventQueue<usize> = EventQueue::with_capacity(BOUNDARY);
        prop_assert!(!small.is_tournament());
        let large: EventQueue<usize> = EventQueue::with_capacity(BOUNDARY + 1);
        prop_assert!(large.is_tournament());

        let mut q: EventQueue<usize> = EventQueue::new();
        let mut reference: Vec<(u64, usize)> = Vec::new();
        let mut next_id = 0usize;
        let mut push = |q: &mut EventQueue<usize>,
                        reference: &mut Vec<(u64, usize)>,
                        t: u64| {
            q.schedule(SimTime::from_nanos(t), next_id);
            reference.push((t, next_id));
            next_id += 1;
        };
        let pop_and_check = |q: &mut EventQueue<usize>,
                             reference: &mut Vec<(u64, usize)>|
         -> Result<(), TestCaseError> {
            let expect = reference
                .iter()
                .enumerate()
                .min_by_key(|&(_, &(t, id))| (t, id))
                .map(|(i, &(t, id))| (i, t, id));
            match expect {
                None => prop_assert!(q.pop().is_none()),
                Some((i, t, id)) => {
                    reference.remove(i);
                    prop_assert_eq!(q.pop(), Some((SimTime::from_nanos(t), id)));
                }
            }
            Ok(())
        };

        // Upward crossing: the first phase pushes straight through the
        // boundary, migrating linear → tournament with a full store.
        for j in 0..first_pushes {
            push(&mut q, &mut reference, (j as u64 * 13) % 251);
        }
        prop_assert!(q.is_tournament(), "must have crossed the boundary up");

        for &(base, pushes, pops) in &phases {
            for j in 0..pushes {
                push(&mut q, &mut reference, base + (j as u64 * 7) % 97);
            }
            for _ in 0..pops {
                pop_and_check(&mut q, &mut reference)?;
            }
        }
        // Downward crossing: drain the migrated store below the
        // threshold, then keep scheduling and verify order still holds.
        while q.len() >= BOUNDARY {
            pop_and_check(&mut q, &mut reference)?;
        }
        for j in 0..8 {
            push(&mut q, &mut reference, 1000 + j);
        }
        while !q.is_empty() {
            pop_and_check(&mut q, &mut reference)?;
        }
        prop_assert!(reference.is_empty());
        prop_assert!(q.pop().is_none());
    }
}
