//! Property-based tests of the statistics toolkit.

use proptest::prelude::*;

use pm_stats::{ConfidenceInterval, Histogram, OnlineStats, TimeWeighted};

fn finite_samples() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0e6f64..1.0e6, 1..200)
}

proptest! {
    /// Welford matches the naive two-pass algorithm.
    #[test]
    fn online_stats_match_two_pass(values in finite_samples()) {
        let s = OnlineStats::from_slice(&values);
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.population_variance() - var).abs() <= 1e-4 * (1.0 + var.abs()));
        prop_assert_eq!(s.min(), values.iter().copied().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(s.max(), values.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    }

    /// Merging two accumulators equals accumulating the concatenation.
    #[test]
    fn merge_is_concatenation(a in finite_samples(), b in finite_samples()) {
        let mut merged = OnlineStats::from_slice(&a);
        merged.merge(&OnlineStats::from_slice(&b));
        let all: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        let direct = OnlineStats::from_slice(&all);
        prop_assert_eq!(merged.count(), direct.count());
        prop_assert!((merged.mean() - direct.mean()).abs() <= 1e-6 * (1.0 + direct.mean().abs()));
        prop_assert!(
            (merged.population_variance() - direct.population_variance()).abs()
                <= 1e-4 * (1.0 + direct.population_variance().abs())
        );
    }

    /// The sample mean always lies inside its own confidence interval, and
    /// the interval widens with confidence.
    #[test]
    fn confidence_interval_sanity(values in prop::collection::vec(-1.0e3f64..1.0e3, 2..60)) {
        let ci90 = ConfidenceInterval::from_samples(&values, 0.90);
        let ci99 = ConfidenceInterval::from_samples(&values, 0.99);
        prop_assert!(ci90.contains(ci90.mean));
        prop_assert!(ci99.half_width >= ci90.half_width);
        prop_assert!(ci90.half_width >= 0.0);
    }

    /// Histogram bookkeeping: counts are conserved and fractions sum to 1.
    #[test]
    fn histogram_conserves_counts(
        values in prop::collection::vec(-10.0f64..110.0, 1..300),
        bins in 1usize..40,
    ) {
        let mut h = Histogram::new(0.0, 100.0, bins);
        for &v in &values {
            h.record(v);
        }
        let binned: u64 = (0..bins).map(|i| h.bin_count(i)).sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), values.len() as u64);
        let in_range = values.iter().filter(|&&v| (0.0..100.0).contains(&v)).count();
        prop_assert_eq!(binned, in_range as u64);
        if in_range > 0 {
            let total: f64 = (0..bins).map(|i| h.bin_fraction(i)).sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
        }
    }

    /// A time-weighted average is bracketed by the extreme recorded values.
    #[test]
    fn time_weighted_average_is_bracketed(
        steps in prop::collection::vec((0.0f64..100.0, -50.0f64..50.0), 1..50),
        tail in 0.001f64..100.0,
    ) {
        let mut times: Vec<f64> = steps.iter().map(|&(dt, _)| dt).collect();
        // Build a non-decreasing time sequence from the deltas.
        let mut acc = 0.0;
        for t in &mut times {
            acc += *t;
            *t = acc;
        }
        let mut tw = TimeWeighted::new();
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (t, &(_, v)) in times.iter().zip(steps.iter()) {
            tw.record(*t, v);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let end = times.last().unwrap() + tail;
        let avg = tw.average_until(end).unwrap();
        prop_assert!(avg >= lo - 1e-9 && avg <= hi + 1e-9, "avg {avg} outside [{lo}, {hi}]");
    }
}
