//! Fixed-width histogram with quantile queries.

/// A histogram over `[low, high)` with equal-width bins plus underflow and
/// overflow bins.
///
/// Used by the disk model to record seek-distance and service-time
/// distributions, which the test suite compares against the Kwan–Baer
/// closed-form seek distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    low: f64,
    high: f64,
    /// Bin width, fixed at construction: `(high - low) / bins`. Stored so
    /// the per-sample path divides by it instead of re-deriving it (the
    /// quotient — and therefore every bin index — is unchanged).
    width: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

/// Where a sample lands in a [`Histogram`]: produced by
/// [`Histogram::slot_of`], consumed by [`Histogram::record_slot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistogramSlot {
    /// Below the lower bound.
    Underflow,
    /// At or above the upper bound.
    Overflow,
    /// In-range, at this bin index.
    Bin(u32),
}

impl Histogram {
    /// Creates a histogram over `[low, high)` with `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `low >= high` or either bound is not finite.
    #[must_use]
    pub fn new(low: f64, high: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(low.is_finite() && high.is_finite(), "bounds must be finite");
        assert!(low < high, "low must be below high");
        Self {
            low,
            high,
            width: (high - low) / bins as f64,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        let slot = self.slot_of(value);
        self.record_slot(slot);
    }

    /// Classifies `value` without recording it: the slot [`Histogram::record`]
    /// would increment. Callers whose samples come from a small discrete
    /// domain (e.g. integer seek distances) can classify each domain value
    /// once and record through [`Histogram::record_slot`]; because the
    /// table is built by this exact function, the resulting counts are
    /// bit-identical to classifying every sample individually.
    #[must_use]
    pub fn slot_of(&self, value: f64) -> HistogramSlot {
        if value < self.low {
            HistogramSlot::Underflow
        } else if value >= self.high {
            HistogramSlot::Overflow
        } else {
            let mut idx = ((value - self.low) / self.width) as usize;
            // Guard against floating-point edge cases at the upper bound.
            if idx >= self.bins.len() {
                idx = self.bins.len() - 1;
            }
            HistogramSlot::Bin(idx as u32)
        }
    }

    /// Records one sample pre-classified by [`Histogram::slot_of`].
    ///
    /// # Panics
    ///
    /// Panics if a `Bin` slot is out of range (i.e. the slot came from a
    /// histogram with a different configuration).
    #[inline]
    pub fn record_slot(&mut self, slot: HistogramSlot) {
        self.count += 1;
        match slot {
            HistogramSlot::Underflow => self.underflow += 1,
            HistogramSlot::Overflow => self.overflow += 1,
            HistogramSlot::Bin(idx) => self.bins[idx as usize] += 1,
        }
    }

    /// Total number of recorded samples (including under/overflow).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Samples below the lower bound.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the upper bound.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Number of bins (excluding under/overflow).
    #[must_use]
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// The `[low, high)` interval covered by bin `i`.
    #[must_use]
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let width = (self.high - self.low) / self.bins.len() as f64;
        (
            self.low + i as f64 * width,
            self.low + (i + 1) as f64 * width,
        )
    }

    /// Fraction of in-range samples in bin `i`; `0.0` if nothing in range.
    #[must_use]
    pub fn bin_fraction(&self, i: usize) -> f64 {
        let in_range = self.count - self.underflow - self.overflow;
        if in_range == 0 {
            0.0
        } else {
            self.bins[i] as f64 / in_range as f64
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`) using linear interpolation
    /// within the containing bin. Returns `None` if the histogram is empty
    /// or the quantile falls in the under/overflow region.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let target = q * self.count as f64;
        let mut cumulative = self.underflow as f64;
        if target < cumulative {
            return None; // falls in underflow: value unknown
        }
        let width = (self.high - self.low) / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            let next = cumulative + c as f64;
            if target <= next && c > 0 {
                let frac = (target - cumulative) / c as f64;
                return Some(self.low + (i as f64 + frac) * width);
            }
            cumulative = next;
        }
        None // falls in overflow
    }

    /// Mean of in-range samples approximated by bin midpoints; `None` if no
    /// in-range samples.
    #[must_use]
    pub fn approx_mean(&self) -> Option<f64> {
        let in_range = self.count - self.underflow - self.overflow;
        if in_range == 0 {
            return None;
        }
        let mut total = 0.0;
        for (i, &c) in self.bins.iter().enumerate() {
            let (lo, hi) = self.bin_range(i);
            total += c as f64 * (lo + hi) / 2.0;
        }
        Some(total / in_range as f64)
    }

    /// Merges another histogram with identical bounds and bin count.
    ///
    /// # Panics
    ///
    /// Panics if the configurations differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.low, other.low, "histogram bounds differ");
        assert_eq!(self.high, other.high, "histogram bounds differ");
        assert_eq!(self.bins.len(), other.bins.len(), "bin counts differ");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.5);
        h.record(5.5);
        h.record(9.99);
        assert_eq!(h.bin_count(0), 1);
        assert_eq!(h.bin_count(5), 1);
        assert_eq!(h.bin_count(9), 1);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-0.1);
        h.record(1.0); // upper bound is exclusive
        h.record(2.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn bin_ranges_tile_the_domain() {
        let h = Histogram::new(2.0, 6.0, 4);
        assert_eq!(h.bin_range(0), (2.0, 3.0));
        assert_eq!(h.bin_range(3), (5.0, 6.0));
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for i in 0..100 {
            h.record(f64::from(i % 10));
        }
        let total: f64 = (0..5).map(|i| h.bin_fraction(i)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_median_of_uniform() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..1000 {
            h.record(f64::from(i % 100));
        }
        let median = h.quantile(0.5).unwrap();
        assert!((median - 50.0).abs() < 2.0, "median={median}");
    }

    #[test]
    fn quantile_empty_is_none() {
        let h = Histogram::new(0.0, 1.0, 2);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn approx_mean_of_symmetric_data() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for v in [1.0, 3.0, 5.0, 7.0, 9.0] {
            h.record(v);
        }
        let m = h.approx_mean().unwrap();
        assert!((m - 5.0).abs() < 1.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new(0.0, 10.0, 10);
        let mut b = Histogram::new(0.0, 10.0, 10);
        a.record(1.0);
        b.record(1.0);
        b.record(-5.0);
        a.merge(&b);
        assert_eq!(a.bin_count(1), 2);
        assert_eq!(a.underflow(), 1);
        assert_eq!(a.count(), 3);
    }

    #[test]
    #[should_panic(expected = "bin counts differ")]
    fn merge_rejects_mismatched() {
        let mut a = Histogram::new(0.0, 10.0, 10);
        let b = Histogram::new(0.0, 10.0, 5);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
