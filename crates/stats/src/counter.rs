//! Hit/total ratio bookkeeping.

/// Counts successes out of a total number of attempts.
///
/// This implements the paper's *success ratio* statistic: the fraction of
/// demand-fetch I/O operations for which the cache had room to initiate the
/// full `D·N`-block inter-run prefetch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    hits: u64,
    total: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an attempt; `hit` marks it as a success.
    pub fn record(&mut self, hit: bool) {
        self.total += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Records a successful attempt.
    pub fn hit(&mut self) {
        self.record(true);
    }

    /// Records a failed attempt.
    pub fn miss(&mut self) {
        self.record(false);
    }

    /// Number of successes.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of failures.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.total - self.hits
    }

    /// Total attempts.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Success ratio in `[0, 1]`; `None` if no attempts were recorded.
    #[must_use]
    pub fn ratio(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.hits as f64 / self.total as f64)
        }
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &Counter) {
        self.hits += other.hits;
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_no_ratio() {
        assert_eq!(Counter::new().ratio(), None);
    }

    #[test]
    fn ratio_counts_correctly() {
        let mut c = Counter::new();
        c.hit();
        c.hit();
        c.miss();
        c.record(true);
        assert_eq!(c.hits(), 3);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.total(), 4);
        assert_eq!(c.ratio(), Some(0.75));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Counter::new();
        a.hit();
        let mut b = Counter::new();
        b.miss();
        b.hit();
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.hits(), 2);
    }

    #[test]
    fn ratio_bounds() {
        let mut c = Counter::new();
        for i in 0..100 {
            c.record(i % 3 == 0);
        }
        let r = c.ratio().unwrap();
        assert!((0.0..=1.0).contains(&r));
    }
}
