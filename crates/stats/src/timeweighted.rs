//! Time-weighted averaging of a step function.

/// Accumulates the time-weighted average of a piecewise-constant signal.
///
/// The merge simulator uses this to compute the paper's *average I/O
/// concurrency* (the time-averaged number of simultaneously busy disks) and
/// per-disk utilization. Time is supplied by the caller as a monotonically
/// non-decreasing `f64` (the simulator passes simulated nanoseconds).
///
/// The value recorded at time `t` is taken to hold from `t` until the next
/// recording.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeWeighted {
    start: Option<f64>,
    last_time: f64,
    last_value: f64,
    weighted_sum: f64,
    max_value: f64,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            start: None,
            last_time: 0.0,
            last_value: 0.0,
            weighted_sum: 0.0,
            max_value: f64::NEG_INFINITY,
        }
    }

    /// Records that the signal takes `value` from time `time` onward.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the previous recording.
    pub fn record(&mut self, time: f64, value: f64) {
        match self.start {
            None => {
                self.start = Some(time);
            }
            Some(_) => {
                assert!(
                    time >= self.last_time,
                    "time must be non-decreasing: {} < {}",
                    time,
                    self.last_time
                );
                self.weighted_sum += self.last_value * (time - self.last_time);
            }
        }
        self.last_time = time;
        self.last_value = value;
        self.max_value = self.max_value.max(value);
    }

    /// Closes the observation window at `end` and returns the time-weighted
    /// average over `[first_record, end]`.
    ///
    /// Returns `None` if nothing was recorded or the window has zero length.
    ///
    /// # Panics
    ///
    /// Panics if `end` is earlier than the last recording.
    #[must_use]
    pub fn average_until(&self, end: f64) -> Option<f64> {
        let start = self.start?;
        assert!(
            end >= self.last_time,
            "end must not precede the last recording"
        );
        let span = end - start;
        if span <= 0.0 {
            return None;
        }
        let total = self.weighted_sum + self.last_value * (end - self.last_time);
        Some(total / span)
    }

    /// Largest value ever recorded; `None` if nothing recorded.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        self.start.map(|_| self.max_value)
    }

    /// The most recently recorded value; `0.0` before any recording.
    #[must_use]
    pub fn current(&self) -> f64 {
        self.last_value
    }

    /// Time of the first recording, if any.
    #[must_use]
    pub fn start_time(&self) -> Option<f64> {
        self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_signal() {
        let mut tw = TimeWeighted::new();
        tw.record(0.0, 3.0);
        assert_eq!(tw.average_until(10.0), Some(3.0));
    }

    #[test]
    fn step_signal() {
        let mut tw = TimeWeighted::new();
        tw.record(0.0, 0.0);
        tw.record(5.0, 10.0);
        // 0 for 5 time units, 10 for 5 time units => average 5.
        assert_eq!(tw.average_until(10.0), Some(5.0));
        assert_eq!(tw.max(), Some(10.0));
    }

    #[test]
    fn window_starts_at_first_record() {
        let mut tw = TimeWeighted::new();
        tw.record(100.0, 2.0);
        tw.record(110.0, 4.0);
        // [100,110): 2, [110,120): 4 => 3 over 20 units.
        assert_eq!(tw.average_until(120.0), Some(3.0));
    }

    #[test]
    fn empty_yields_none() {
        let tw = TimeWeighted::new();
        assert_eq!(tw.average_until(10.0), None);
        assert_eq!(tw.max(), None);
    }

    #[test]
    fn zero_span_yields_none() {
        let mut tw = TimeWeighted::new();
        tw.record(5.0, 1.0);
        assert_eq!(tw.average_until(5.0), None);
    }

    #[test]
    fn repeated_time_records_are_allowed() {
        let mut tw = TimeWeighted::new();
        tw.record(0.0, 1.0);
        tw.record(0.0, 2.0); // instantaneous overwrite
        assert_eq!(tw.average_until(10.0), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_time_travel() {
        let mut tw = TimeWeighted::new();
        tw.record(10.0, 1.0);
        tw.record(5.0, 2.0);
    }

    #[test]
    fn current_tracks_last_value() {
        let mut tw = TimeWeighted::new();
        assert_eq!(tw.current(), 0.0);
        tw.record(0.0, 7.0);
        assert_eq!(tw.current(), 7.0);
    }
}
