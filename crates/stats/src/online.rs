//! Single-pass (online) moment accumulation using Welford's algorithm.

/// Accumulates count, mean, variance, and extrema of a stream of samples in
/// a single pass, without storing the samples.
///
/// Uses Welford's numerically-stable recurrence for the second central
/// moment. Two accumulators can be [merged](OnlineStats::merge) (Chan et
/// al.'s parallel variant), which the experiment harness uses to combine
/// per-trial statistics.
///
/// # Examples
///
/// ```
/// use pm_stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds an accumulator from a slice of samples.
    #[must_use]
    pub fn from_slice(values: &[f64]) -> Self {
        let mut s = Self::new();
        for &v in values {
            s.push(v);
        }
        s
    }

    /// Reconstructs an accumulator from raw moments: `count` samples with
    /// the given `sum`, sum of squares, and extrema.
    ///
    /// Producers on hot paths (e.g. per-request disk statistics) accumulate
    /// these four quantities in integer arithmetic and convert once at
    /// reporting time, instead of paying Welford's floating-point recurrence
    /// per sample. The second central moment is recovered as
    /// `sumsq − sum²/n`, clamped at zero against rounding.
    #[must_use]
    pub fn from_moments(count: u64, sum: f64, sumsq: f64, min: f64, max: f64) -> Self {
        if count == 0 {
            return Self::new();
        }
        let mean = sum / count as f64;
        let m2 = (sumsq - sum * mean).max(0.0);
        Self {
            count,
            mean,
            m2,
            min,
            max,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` if no samples have been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the samples; `0.0` when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sum of the samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.mean * self.count as f64
    }

    /// Smallest sample; `+inf` when empty.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample; `-inf` when empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Population variance (divide by `n`); `0.0` when empty.
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divide by `n - 1`); `0.0` with fewer than 2 samples.
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn sample_stddev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean, `s / sqrt(n)`; `0.0` with fewer than 2
    /// samples.
    #[must_use]
    pub fn standard_error(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.sample_stddev() / (self.count as f64).sqrt()
        }
    }

    /// Merges another accumulator into this one, as if all of its samples
    /// had been pushed here.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_variance(values: &[f64]) -> f64 {
        let m = values.iter().sum::<f64>() / values.len() as f64;
        values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = OnlineStats::new();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.standard_error(), 0.0);
    }

    #[test]
    fn single_sample() {
        let mut s = OnlineStats::new();
        s.push(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn matches_naive_two_pass() {
        let values: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 10.0 + 5.0).collect();
        let s = OnlineStats::from_slice(&values);
        assert!((s.population_variance() - naive_variance(&values)).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_sequential() {
        let a: Vec<f64> = (0..37).map(|i| i as f64 * 1.5 - 3.0).collect();
        let b: Vec<f64> = (0..53).map(|i| (i as f64).sqrt()).collect();
        let mut merged = OnlineStats::from_slice(&a);
        merged.merge(&OnlineStats::from_slice(&b));

        let mut seq = OnlineStats::from_slice(&a);
        for &v in &b {
            seq.push(v);
        }
        assert_eq!(merged.count(), seq.count());
        assert!((merged.mean() - seq.mean()).abs() < 1e-9);
        assert!((merged.population_variance() - seq.population_variance()).abs() < 1e-9);
        assert_eq!(merged.min(), seq.min());
        assert_eq!(merged.max(), seq.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let a = OnlineStats::from_slice(&[1.0, 2.0, 3.0]);
        let mut m = a;
        m.merge(&OnlineStats::new());
        assert_eq!(m, a);

        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e, a);
    }

    #[test]
    fn sum_is_mean_times_count() {
        let s = OnlineStats::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.sum() - 10.0).abs() < 1e-12);
    }
}
