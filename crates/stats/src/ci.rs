//! Student-t confidence intervals for small numbers of trials.

use crate::OnlineStats;

/// A two-sided confidence interval around a sample mean.
///
/// The experiment harness runs a small number of independent simulation
/// trials per data point (the paper averages a handful of trials), so the
/// interval uses Student's t distribution rather than the normal
/// approximation. Critical values are tabulated for 90/95/99% confidence and
/// interpolated in between; for more than 30 degrees of freedom the normal
/// quantile is used.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the interval (`mean ± half_width`).
    pub half_width: f64,
    /// Confidence level used, e.g. `0.95`.
    pub confidence: f64,
    /// Number of samples the interval is based on.
    pub n: u64,
}

/// Two-sided t critical values, rows indexed by degrees of freedom 1..=30.
/// Columns: 90%, 95%, 99%.
const T_TABLE: [[f64; 3]; 30] = [
    [6.314, 12.706, 63.657],
    [2.920, 4.303, 9.925],
    [2.353, 3.182, 5.841],
    [2.132, 2.776, 4.604],
    [2.015, 2.571, 4.032],
    [1.943, 2.447, 3.707],
    [1.895, 2.365, 3.499],
    [1.860, 2.306, 3.355],
    [1.833, 2.262, 3.250],
    [1.812, 2.228, 3.169],
    [1.796, 2.201, 3.106],
    [1.782, 2.179, 3.055],
    [1.771, 2.160, 3.012],
    [1.761, 2.145, 2.977],
    [1.753, 2.131, 2.947],
    [1.746, 2.120, 2.921],
    [1.740, 2.110, 2.898],
    [1.734, 2.101, 2.878],
    [1.729, 2.093, 2.861],
    [1.725, 2.086, 2.845],
    [1.721, 2.080, 2.831],
    [1.717, 2.074, 2.819],
    [1.714, 2.069, 2.807],
    [1.711, 2.064, 2.797],
    [1.708, 2.060, 2.787],
    [1.706, 2.056, 2.779],
    [1.703, 2.052, 2.771],
    [1.701, 2.048, 2.763],
    [1.699, 2.045, 2.756],
    [1.697, 2.042, 2.750],
];

/// Large-sample (normal) critical values for 90/95/99%.
const Z_VALUES: [f64; 3] = [1.645, 1.960, 2.576];

/// Returns the two-sided critical value `t*` for the given degrees of
/// freedom and confidence level.
///
/// Confidence levels between the tabulated 0.90/0.95/0.99 are linearly
/// interpolated; levels outside that range are clamped to the nearest
/// tabulated column.
#[must_use]
pub(crate) fn t_critical(dof: u64, confidence: f64) -> f64 {
    let row: &[f64; 3] = if dof == 0 {
        // Degenerate: with one sample there is no spread estimate; the
        // interval half-width will be 0 anyway, so any finite value works.
        &T_TABLE[0]
    } else if dof <= 30 {
        &T_TABLE[(dof - 1) as usize]
    } else {
        &Z_VALUES
    };
    if confidence <= 0.90 {
        row[0]
    } else if confidence >= 0.99 {
        row[2]
    } else if confidence <= 0.95 {
        let f = (confidence - 0.90) / 0.05;
        row[0] + f * (row[1] - row[0])
    } else {
        let f = (confidence - 0.95) / 0.04;
        row[1] + f * (row[2] - row[1])
    }
}

impl ConfidenceInterval {
    /// Computes the interval from an [`OnlineStats`] accumulator.
    ///
    /// With fewer than two samples the half-width is zero.
    #[must_use]
    pub fn from_stats(stats: &OnlineStats, confidence: f64) -> Self {
        let n = stats.count();
        let half_width = if n < 2 {
            0.0
        } else {
            t_critical(n - 1, confidence) * stats.standard_error()
        };
        Self {
            mean: stats.mean(),
            half_width,
            confidence,
            n,
        }
    }

    /// Computes the interval directly from samples.
    #[must_use]
    pub fn from_samples(samples: &[f64], confidence: f64) -> Self {
        Self::from_stats(&OnlineStats::from_slice(samples), confidence)
    }

    /// Lower bound of the interval.
    #[must_use]
    pub fn low(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound of the interval.
    #[must_use]
    pub fn high(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether `value` falls inside the interval (inclusive).
    #[must_use]
    pub fn contains(&self, value: f64) -> bool {
        value >= self.low() && value <= self.high()
    }

    /// Relative half-width (`half_width / |mean|`); `inf` if the mean is 0
    /// but the half-width is not.
    #[must_use]
    pub fn relative_half_width(&self) -> f64 {
        if self.mean == 0.0 {
            if self.half_width == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.half_width / self.mean.abs()
        }
    }
}

impl std::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.4} ± {:.4} ({}% CI, n={})",
            self.mean,
            self.half_width,
            (self.confidence * 100.0).round(),
            self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_critical_tabulated_values() {
        assert!((t_critical(4, 0.95) - 2.776).abs() < 1e-9);
        assert!((t_critical(9, 0.90) - 1.833).abs() < 1e-9);
        assert!((t_critical(1, 0.99) - 63.657).abs() < 1e-9);
    }

    #[test]
    fn t_critical_large_dof_uses_normal() {
        assert!((t_critical(1000, 0.95) - 1.960).abs() < 1e-9);
    }

    #[test]
    fn t_critical_interpolates() {
        let t = t_critical(4, 0.925);
        assert!(t > 2.132 && t < 2.776);
    }

    #[test]
    fn t_critical_clamps_extremes() {
        assert_eq!(t_critical(5, 0.5), t_critical(5, 0.90));
        assert_eq!(t_critical(5, 0.999), t_critical(5, 0.99));
    }

    #[test]
    fn interval_known_case() {
        // Samples 1..=5: mean 3, sample stddev sqrt(2.5), sem sqrt(0.5).
        let ci = ConfidenceInterval::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0], 0.95);
        assert_eq!(ci.n, 5);
        assert!((ci.mean - 3.0).abs() < 1e-12);
        let expected = 2.776 * (0.5f64).sqrt();
        assert!((ci.half_width - expected).abs() < 1e-9);
        assert!(ci.contains(3.0));
        assert!(!ci.contains(100.0));
    }

    #[test]
    fn single_sample_has_zero_width() {
        let ci = ConfidenceInterval::from_samples(&[7.0], 0.95);
        assert_eq!(ci.half_width, 0.0);
        assert_eq!(ci.low(), 7.0);
        assert_eq!(ci.high(), 7.0);
    }

    #[test]
    fn relative_half_width_edge_cases() {
        let ci = ConfidenceInterval {
            mean: 0.0,
            half_width: 0.0,
            confidence: 0.95,
            n: 3,
        };
        assert_eq!(ci.relative_half_width(), 0.0);
        let ci2 = ConfidenceInterval {
            mean: 0.0,
            half_width: 1.0,
            ..ci
        };
        assert!(ci2.relative_half_width().is_infinite());
    }

    #[test]
    fn display_is_reasonable() {
        let ci = ConfidenceInterval::from_samples(&[1.0, 2.0, 3.0], 0.95);
        let s = ci.to_string();
        assert!(s.contains("95% CI"));
        assert!(s.contains("n=3"));
    }
}
