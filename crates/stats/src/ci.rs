//! Student-t confidence intervals for small numbers of trials.

use crate::OnlineStats;

/// A two-sided confidence interval around a sample mean.
///
/// The experiment harness runs a small number of independent simulation
/// trials per data point (the paper averages a handful of trials), so the
/// interval uses Student's t distribution rather than the normal
/// approximation. Critical values are tabulated for 80/90/95/99/99.5%
/// confidence and interpolated in between; for more than 30 degrees of
/// freedom the normal quantile is used.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the interval (`mean ± half_width`).
    pub half_width: f64,
    /// Confidence level used, e.g. `0.95`.
    pub confidence: f64,
    /// Number of samples the interval is based on.
    pub n: u64,
}

/// Tabulated two-sided confidence levels, one per column of [`T_TABLE`].
const CONF_LEVELS: [f64; 5] = [0.80, 0.90, 0.95, 0.99, 0.995];

/// Two-sided t critical values, rows indexed by degrees of freedom 1..=30.
/// Columns follow [`CONF_LEVELS`]: 80%, 90%, 95%, 99%, 99.5%.
const T_TABLE: [[f64; 5]; 30] = [
    [3.078, 6.314, 12.706, 63.657, 127.321],
    [1.886, 2.920, 4.303, 9.925, 14.089],
    [1.638, 2.353, 3.182, 5.841, 7.453],
    [1.533, 2.132, 2.776, 4.604, 5.598],
    [1.476, 2.015, 2.571, 4.032, 4.773],
    [1.440, 1.943, 2.447, 3.707, 4.317],
    [1.415, 1.895, 2.365, 3.499, 4.029],
    [1.397, 1.860, 2.306, 3.355, 3.833],
    [1.383, 1.833, 2.262, 3.250, 3.690],
    [1.372, 1.812, 2.228, 3.169, 3.581],
    [1.363, 1.796, 2.201, 3.106, 3.497],
    [1.356, 1.782, 2.179, 3.055, 3.428],
    [1.350, 1.771, 2.160, 3.012, 3.372],
    [1.345, 1.761, 2.145, 2.977, 3.326],
    [1.341, 1.753, 2.131, 2.947, 3.286],
    [1.337, 1.746, 2.120, 2.921, 3.252],
    [1.333, 1.740, 2.110, 2.898, 3.222],
    [1.330, 1.734, 2.101, 2.878, 3.197],
    [1.328, 1.729, 2.093, 2.861, 3.174],
    [1.325, 1.725, 2.086, 2.845, 3.153],
    [1.323, 1.721, 2.080, 2.831, 3.135],
    [1.321, 1.717, 2.074, 2.819, 3.119],
    [1.319, 1.714, 2.069, 2.807, 3.104],
    [1.318, 1.711, 2.064, 2.797, 3.091],
    [1.316, 1.708, 2.060, 2.787, 3.078],
    [1.315, 1.706, 2.056, 2.779, 3.067],
    [1.314, 1.703, 2.052, 2.771, 3.057],
    [1.313, 1.701, 2.048, 2.763, 3.047],
    [1.311, 1.699, 2.045, 2.756, 3.038],
    [1.310, 1.697, 2.042, 2.750, 3.030],
];

/// Large-sample (normal) critical values, one per [`CONF_LEVELS`] column.
const Z_VALUES: [f64; 5] = [1.282, 1.645, 1.960, 2.576, 2.807];

/// Returns the two-sided critical value `t*` for the given degrees of
/// freedom and confidence level.
///
/// Any confidence in `[0.80, 0.995]` is accepted: levels between the
/// tabulated columns are linearly interpolated, and levels outside that
/// range are clamped to the nearest tabulated column.
#[must_use]
pub(crate) fn t_critical(dof: u64, confidence: f64) -> f64 {
    let row: &[f64; 5] = if dof == 0 {
        // Degenerate: with one sample there is no spread estimate; the
        // interval half-width will be 0 anyway, so any finite value works.
        &T_TABLE[0]
    } else if dof <= 30 {
        &T_TABLE[(dof - 1) as usize]
    } else {
        &Z_VALUES
    };
    if confidence <= CONF_LEVELS[0] {
        return row[0];
    }
    if confidence >= CONF_LEVELS[CONF_LEVELS.len() - 1] {
        return row[CONF_LEVELS.len() - 1];
    }
    // Find the bracketing columns and interpolate.
    for i in 1..CONF_LEVELS.len() {
        if confidence <= CONF_LEVELS[i] {
            let f = (confidence - CONF_LEVELS[i - 1]) / (CONF_LEVELS[i] - CONF_LEVELS[i - 1]);
            return row[i - 1] + f * (row[i] - row[i - 1]);
        }
    }
    unreachable!("confidence bracketed above")
}

impl ConfidenceInterval {
    /// Computes the interval from an [`OnlineStats`] accumulator.
    ///
    /// With fewer than two samples the half-width is zero.
    #[must_use]
    pub fn from_stats(stats: &OnlineStats, confidence: f64) -> Self {
        let n = stats.count();
        let half_width = if n < 2 {
            0.0
        } else {
            t_critical(n - 1, confidence) * stats.standard_error()
        };
        Self {
            mean: stats.mean(),
            half_width,
            confidence,
            n,
        }
    }

    /// Computes the interval directly from samples.
    #[must_use]
    pub fn from_samples(samples: &[f64], confidence: f64) -> Self {
        Self::from_stats(&OnlineStats::from_slice(samples), confidence)
    }

    /// Lower bound of the interval.
    #[must_use]
    pub fn low(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound of the interval.
    #[must_use]
    pub fn high(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether `value` falls inside the interval (inclusive).
    #[must_use]
    pub fn contains(&self, value: f64) -> bool {
        value >= self.low() && value <= self.high()
    }

    /// Relative half-width (`half_width / |mean|`), the convergence
    /// criterion of auto-trial experiment drivers. `None` when the mean is
    /// zero, where the ratio is undefined and no relative stopping rule
    /// can apply.
    #[must_use]
    pub fn relative_half_width(&self) -> Option<f64> {
        if self.mean == 0.0 {
            None
        } else {
            Some(self.half_width / self.mean.abs())
        }
    }
}

impl std::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.4} ± {:.4} ({}% CI, n={})",
            self.mean,
            self.half_width,
            (self.confidence * 100.0).round(),
            self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_critical_tabulated_values() {
        assert!((t_critical(4, 0.95) - 2.776).abs() < 1e-9);
        assert!((t_critical(9, 0.90) - 1.833).abs() < 1e-9);
        assert!((t_critical(1, 0.99) - 63.657).abs() < 1e-9);
    }

    #[test]
    fn t_critical_pinned_df1() {
        assert!((t_critical(1, 0.80) - 3.078).abs() < 1e-9);
        assert!((t_critical(1, 0.95) - 12.706).abs() < 1e-9);
        assert!((t_critical(1, 0.995) - 127.321).abs() < 1e-9);
    }

    #[test]
    fn t_critical_pinned_df29() {
        assert!((t_critical(29, 0.80) - 1.311).abs() < 1e-9);
        assert!((t_critical(29, 0.90) - 1.699).abs() < 1e-9);
        assert!((t_critical(29, 0.95) - 2.045).abs() < 1e-9);
        assert!((t_critical(29, 0.99) - 2.756).abs() < 1e-9);
        assert!((t_critical(29, 0.995) - 3.038).abs() < 1e-9);
    }

    #[test]
    fn t_critical_pinned_df30() {
        assert!((t_critical(30, 0.80) - 1.310).abs() < 1e-9);
        assert!((t_critical(30, 0.95) - 2.042).abs() < 1e-9);
        assert!((t_critical(30, 0.995) - 3.030).abs() < 1e-9);
    }

    #[test]
    fn t_critical_above_df30_uses_normal() {
        for dof in [31u64, 100, 1000] {
            assert!((t_critical(dof, 0.80) - 1.282).abs() < 1e-9, "dof={dof}");
            assert!((t_critical(dof, 0.95) - 1.960).abs() < 1e-9, "dof={dof}");
            assert!((t_critical(dof, 0.995) - 2.807).abs() < 1e-9, "dof={dof}");
        }
    }

    #[test]
    fn t_critical_interpolates_every_column_pair() {
        // Midpoints land between the bracketing columns in every gap.
        for (lo, hi) in [(0.80, 0.90), (0.90, 0.95), (0.95, 0.99), (0.99, 0.995)] {
            let mid = 0.5 * (lo + hi);
            let t = t_critical(4, mid);
            assert!(
                t > t_critical(4, lo) && t < t_critical(4, hi),
                "confidence {mid}: {t}"
            );
        }
        // Interpolation is exact at the midpoint of a linear segment.
        let expected = 0.5 * (2.132 + 2.776);
        assert!((t_critical(4, 0.925) - expected).abs() < 1e-9);
    }

    #[test]
    fn t_critical_clamps_extremes() {
        assert_eq!(t_critical(5, 0.5), t_critical(5, 0.80));
        assert_eq!(t_critical(5, 0.9999), t_critical(5, 0.995));
    }

    #[test]
    fn t_critical_monotone_in_confidence() {
        let mut prev = 0.0;
        for conf in [0.80, 0.85, 0.90, 0.93, 0.95, 0.97, 0.99, 0.992, 0.995] {
            let t = t_critical(10, conf);
            assert!(t > prev, "confidence {conf}: {t} <= {prev}");
            prev = t;
        }
    }

    #[test]
    fn interval_known_case() {
        // Samples 1..=5: mean 3, sample stddev sqrt(2.5), sem sqrt(0.5).
        let ci = ConfidenceInterval::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0], 0.95);
        assert_eq!(ci.n, 5);
        assert!((ci.mean - 3.0).abs() < 1e-12);
        let expected = 2.776 * (0.5f64).sqrt();
        assert!((ci.half_width - expected).abs() < 1e-9);
        assert!(ci.contains(3.0));
        assert!(!ci.contains(100.0));
    }

    #[test]
    fn interval_at_80_percent_is_narrower() {
        let samples = [1.0, 2.0, 3.0, 4.0, 5.0];
        let narrow = ConfidenceInterval::from_samples(&samples, 0.80);
        let wide = ConfidenceInterval::from_samples(&samples, 0.995);
        assert!(narrow.half_width < wide.half_width);
        assert!((narrow.half_width - 1.533 * (0.5f64).sqrt()).abs() < 1e-9);
        assert!((wide.half_width - 5.598 * (0.5f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn single_sample_has_zero_width() {
        let ci = ConfidenceInterval::from_samples(&[7.0], 0.95);
        assert_eq!(ci.half_width, 0.0);
        assert_eq!(ci.low(), 7.0);
        assert_eq!(ci.high(), 7.0);
    }

    #[test]
    fn relative_half_width_edge_cases() {
        let ci = ConfidenceInterval {
            mean: 0.0,
            half_width: 0.0,
            confidence: 0.95,
            n: 3,
        };
        assert_eq!(ci.relative_half_width(), None);
        let ci2 = ConfidenceInterval {
            mean: 0.0,
            half_width: 1.0,
            ..ci
        };
        assert_eq!(ci2.relative_half_width(), None);
        let ci3 = ConfidenceInterval {
            mean: -4.0,
            half_width: 1.0,
            ..ci
        };
        assert_eq!(ci3.relative_half_width(), Some(0.25));
    }

    #[test]
    fn display_is_reasonable() {
        let ci = ConfidenceInterval::from_samples(&[1.0, 2.0, 3.0], 0.95);
        let s = ci.to_string();
        assert!(s.contains("95% CI"));
        assert!(s.contains("n=3"));
    }
}
