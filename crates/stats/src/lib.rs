//! Statistics utilities for the `prefetchmerge` simulator.
//!
//! The simulation experiments in Pai & Varman (ICDE 1992) average several
//! independent trials per data point and report time-averaged quantities
//! (e.g. the average number of concurrently busy disks). This crate provides
//! the small, allocation-light statistical toolkit those experiments need:
//!
//! * [`OnlineStats`] — single-pass mean/variance/extrema (Welford's method),
//!   used for per-trial aggregation.
//! * [`ConfidenceInterval`] — Student-t confidence intervals over a set of
//!   trial results.
//! * [`Histogram`] — fixed-width binning with quantile queries, used for
//!   seek-distance and service-time distributions.
//! * [`TimeWeighted`] — time-weighted average of a step function, used for
//!   disk-concurrency and utilization metrics.
//! * [`Counter`] — ratio bookkeeping (e.g. the paper's *success ratio*).
//!
//! All types are `f64`-based, deterministic, and have no dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ci;
mod counter;
mod histogram;
mod online;
mod timeweighted;

pub use ci::ConfidenceInterval;
pub use counter::Counter;
pub use histogram::{Histogram, HistogramSlot};
pub use online::OnlineStats;
pub use timeweighted::TimeWeighted;

/// Relative difference `|a - b| / max(|a|, |b|)`, with `0.0` when both are 0.
///
/// Used throughout the test suites to compare simulated results against the
/// paper's closed-form predictions with a tolerance.
#[must_use]
pub fn relative_error(a: f64, b: f64) -> f64 {
    let denom = a.abs().max(b.abs());
    if denom == 0.0 {
        0.0
    } else {
        (a - b).abs() / denom
    }
}

/// Arithmetic mean of a slice; `None` for an empty slice.
#[must_use]
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_basic() {
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert!((relative_error(100.0, 110.0) - 10.0 / 110.0).abs() < 1e-12);
        // Symmetric.
        assert_eq!(relative_error(3.0, 4.0), relative_error(4.0, 3.0));
    }

    #[test]
    fn relative_error_with_zero_side() {
        assert_eq!(relative_error(0.0, 5.0), 1.0);
        assert_eq!(relative_error(-5.0, 0.0), 1.0);
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0]), Some(2.0));
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
    }
}
