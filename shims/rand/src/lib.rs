//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so the
//! workspace replaces `rand` with this shim via a path dependency. It
//! provides exactly the surface `pm-sim` (and the test suites) consume:
//! the fallible [`TryRng`] trait and the infallible [`Rng`] trait with a
//! blanket impl over infallible `TryRng` implementors, mirroring the
//! rand 0.10 design. Generators themselves live in `pm-sim`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A random number generator whose operations may fail.
pub trait TryRng {
    /// Error produced when the underlying source fails.
    type Error: core::fmt::Debug;

    /// Returns the next random `u32`, or an error.
    fn try_next_u32(&mut self) -> Result<u32, Self::Error>;

    /// Returns the next random `u64`, or an error.
    fn try_next_u64(&mut self) -> Result<u64, Self::Error>;

    /// Fills `dest` with random bytes, or returns an error.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Self::Error>;
}

/// An infallible random number generator.
///
/// Blanket-implemented for every [`TryRng`] whose error is `Debug`
/// (unwrapping is a no-op for `Infallible` errors, which is the only
/// error type this workspace uses).
pub trait Rng {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<T: TryRng> Rng for T {
    fn next_u32(&mut self) -> u32 {
        self.try_next_u32().expect("infallible rng")
    }

    fn next_u64(&mut self) -> u64 {
        self.try_next_u64().expect("infallible rng")
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.try_fill_bytes(dest).expect("infallible rng");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl TryRng for Counter {
        type Error = std::convert::Infallible;

        fn try_next_u32(&mut self) -> Result<u32, Self::Error> {
            Ok(self.try_next_u64()? as u32)
        }

        fn try_next_u64(&mut self) -> Result<u64, Self::Error> {
            self.0 = self.0.wrapping_add(1);
            Ok(self.0)
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Self::Error> {
            for b in dest {
                *b = self.try_next_u64()? as u8;
            }
            Ok(())
        }
    }

    #[test]
    fn blanket_rng_over_infallible_tryrng() {
        let mut rng = Counter(0);
        assert_eq!(rng.next_u64(), 1);
        assert_eq!(rng.next_u32(), 2);
        let mut buf = [0u8; 3];
        rng.fill_bytes(&mut buf);
        assert_eq!(buf, [3, 4, 5]);
    }
}
