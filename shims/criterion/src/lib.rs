//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace replaces
//! `criterion` with this shim via a path dependency. Benchmarks compile and
//! run unchanged through `cargo bench`; instead of Criterion's statistical
//! machinery they report min/mean/max wall-clock time over
//! `sample_size` timed samples after a short warm-up.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped. Only a hint in the real crate; ignored
/// here (every iteration gets a fresh input).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Benchmark driver handed to each target function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(id);
        self
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` directly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up, also protects the timed region from cold caches.
        black_box(routine());
        self.samples = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                black_box(routine());
                start.elapsed()
            })
            .collect();
    }

    /// Times `routine` over fresh inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        self.samples = (0..self.sample_size)
            .map(|_| {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                start.elapsed()
            })
            .collect();
    }

    /// Like [`Bencher::iter_batched`] but passes the input by reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.iter_batched(setup, |mut input| routine(&mut input), _size);
    }

    fn report(&self, id: &str) {
        assert!(
            !self.samples.is_empty(),
            "benchmark {id} never called iter/iter_batched"
        );
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        println!(
            "{id:<44} mean {:>12} min {:>12} max {:>12} ({} samples)",
            fmt(mean),
            fmt(*min),
            fmt(*max),
            self.samples.len()
        );
    }
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declares a group of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("shim/self_test", |b| {
            b.iter(|| black_box(2u64 + 2));
        });
        c.bench_function("shim/self_test_batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        });
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt(Duration::from_nanos(10)), "10 ns");
        assert_eq!(fmt(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(fmt(Duration::from_secs(2)), "2.000 s");
    }
}
