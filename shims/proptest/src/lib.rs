//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace replaces
//! `proptest` with this shim via a path dependency. It implements the
//! subset of the API the test suites consume:
//!
//! * [`Strategy`] with [`Strategy::prop_map`] and [`Strategy::boxed`];
//! * range, tuple, [`collection::vec`], [`option::of`], [`Just`] and
//!   union strategies;
//! * [`any`] over the primitive types;
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assert_ne!`], [`prop_assume!`] and [`prop_oneof!`] macros.
//!
//! Sampling is purely random (no shrinking) but fully deterministic: each
//! test function derives its RNG seed from its own module path and name,
//! so failures reproduce across runs and are independent of test
//! execution order or thread count.

#![forbid(unsafe_code)]

use std::ops::Range;
use std::rc::Rc;

pub mod test_runner;

pub use test_runner::{Config as ProptestConfig, TestRng};

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the whole test fails.
    Fail(String),
    /// A precondition (`prop_assume!`) did not hold; the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failing-case error.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Builds a rejected-case error.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

/// Result type of a single generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of values of one type.
///
/// Unlike real proptest there is no shrinking: `sample` draws one value
/// from the deterministic [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let inner = self;
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| inner.sample(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between several strategies of one value type
/// (the engine behind [`prop_oneof!`]).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union(options)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            #[allow(trivial_numeric_casts)]
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = rng.below_u128(span);
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            #[allow(trivial_numeric_casts)]
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let off = rng.below_u128(span);
                (*self.start() as i128 + off as i128) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let u = rng.uniform_f64();
        let v = self.start + u * (self.end - self.start);
        // Guard against round-up to the exclusive bound.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        let wide = (f64::from(self.start)..f64::from(self.end)).sample(rng);
        wide as f32
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            #[allow(trivial_numeric_casts)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy for an unconstrained value of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Admissible length specifications for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for vectors whose length lies in `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// See [`of`].
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            // 1-in-4 None, matching real proptest's default weighting
            // closely enough for coverage purposes.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }

    /// Strategy for `Option<T>` values over an inner strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// The `proptest::prelude` equivalent: everything tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };

    /// Namespaced access to the strategy modules (`prop::collection::vec`
    /// and friends).
    pub mod prop {
        pub use crate::{collection, option};
    }
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// item expands to a `#[test]`-style function that samples the strategies
/// `config.cases` times and runs the body on each sample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_body {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(10).max(config.cases);
            while accepted < config.cases && attempts < max_attempts {
                attempts += 1;
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let inputs = {
                    let mut s = String::new();
                    $(s.push_str(&format!(
                        concat!(stringify!($arg), " = {:?}; "),
                        &$arg
                    ));)+
                    s
                };
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body;
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case failed: {}\n  inputs: {}",
                            msg, inputs
                        );
                    }
                }
            }
            if accepted < config.cases {
                eprintln!(
                    "warning: {} accepted only {accepted}/{} cases before the rejection budget ran out",
                    stringify!($name),
                    config.cases
                );
            }
        }
    )*};
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current test case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Fails the current test case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, $($fmt)+);
    }};
}

/// Rejects the current test case (drawing a fresh sample) unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges_stay_in_bounds");
        for _ in 0..1000 {
            let v = (3u32..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.0f64..2.0).sample(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let i = (-5i32..6).sample(&mut rng);
            assert!((-5..6).contains(&i));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_test_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let s = prop::collection::vec(any::<u64>(), 1..20);
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }

    #[test]
    fn oneof_union_covers_all_arms() {
        let mut rng = TestRng::for_test("oneof");
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro pipeline itself: tuples, maps, assume, assert.
        #[test]
        fn macro_pipeline_works(
            v in prop::collection::vec((0u8..10, any::<bool>()), 0..8),
            n in (1u32..50).prop_map(|x| x * 2),
        ) {
            prop_assume!(n != 4);
            prop_assert!(n % 2 == 0, "n = {n} should be even");
            prop_assert_eq!(v.len(), v.iter().filter(|_| true).count());
            prop_assert_ne!(n, 3);
        }
    }
}
