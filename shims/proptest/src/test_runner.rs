//! Deterministic sampling RNG and run configuration.

/// Run configuration (`ProptestConfig` in the real crate).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl Config {
    /// Configuration running `cases` accepted samples per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}

/// Deterministic splitmix64 sampling generator.
///
/// Each test function gets its own stream, keyed by the test's full path,
/// so results never depend on test ordering or parallelism.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator keyed by an arbitrary name (FNV-1a of the bytes).
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Generator from an explicit seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit output (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below() requires n > 0");
        // Multiply-shift; bias is ≤ n/2^64, irrelevant for sampling.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform value in `[0, n)` for spans that may exceed `u64`.
    pub fn below_u128(&mut self, n: u128) -> u128 {
        assert!(n > 0, "below_u128() requires n > 0");
        if n <= u128::from(u64::MAX) {
            u128::from(self.below(n as u64))
        } else {
            // Spans wider than 64 bits only arise for full-width integer
            // ranges; compose two draws.
            let v = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
            v % n
        }
    }

    /// Uniform value in `[0, 1)` with 53 bits of precision.
    pub fn uniform_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = TestRng::for_test("abc");
        let mut b = TestRng::for_test("abc");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_names_distinct_streams() {
        let mut a = TestRng::for_test("abc");
        let mut b = TestRng::for_test("abd");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_in_bounds() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..10_000 {
            assert!(rng.below(13) < 13);
        }
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut rng = TestRng::from_seed(8);
        for _ in 0..10_000 {
            let u = rng.uniform_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
