//! Invariants of the `pm-trace` subsystem, checked end-to-end against the
//! real simulator:
//!
//! * the Chrome-trace export of a pinned tiny scenario matches its golden
//!   snapshot byte-for-byte (regenerate with `UPDATE_GOLDEN=1`),
//! * recorded event streams are well-formed — per-disk stamps are
//!   monotone and every `DiskIssue` pairs with exactly one `DiskSeekDone`
//!   and one `DiskTransferDone` of the same span,
//! * tracing is observation-only: traced and untraced runs produce
//!   bit-identical reports, and the recorded trace itself is bit-identical
//!   for every worker-thread count.

use std::collections::BTreeMap;
use std::path::PathBuf;

use pm_core::{
    EventKind, MergeConfig, MergeSim, PrefetchStrategy, RecordingSink, ScenarioBuilder, SyncMode, TraceEvent, UniformDepletion, run_trials_parallel, run_trials_traced,
};
use pm_trace::export::chrome_trace_json;

/// The pinned golden scenario: small enough that its Chrome trace stays
/// reviewable, and exercising both disks, queueing, and demand misses.
fn golden_cfg() -> MergeConfig {
    let mut cfg = ScenarioBuilder::new(2, 2).build().unwrap();
    cfg.run_blocks = 4;
    cfg.strategy = PrefetchStrategy::IntraRun { n: 2 };
    cfg.sync = SyncMode::Unsynchronized;
    cfg.cache_blocks = 8;
    cfg.seed = 42;
    cfg
}

fn record(cfg: MergeConfig) -> Vec<TraceEvent> {
    MergeSim::new(cfg)
        .expect("valid configuration")
        .replace_sink(RecordingSink::unbounded())
        .run_with_sink(&mut UniformDepletion)
        .1
        .into_events()
}

#[test]
fn chrome_export_matches_golden_snapshot() {
    let json = chrome_trace_json(&record(golden_cfg()));
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/trace_small.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &json).expect("write golden");
    }
    let golden = std::fs::read_to_string(&path)
        .expect("golden snapshot missing; rerun with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        json, golden,
        "Chrome export drifted from tests/golden/trace_small.json; \
         verify the change is intended and rerun with UPDATE_GOLDEN=1"
    );
}

#[test]
fn event_streams_are_well_formed() {
    let scenarios = [
        (PrefetchStrategy::None, SyncMode::Unsynchronized, 0),
        (PrefetchStrategy::IntraRun { n: 4 }, SyncMode::Synchronized, 0),
        (PrefetchStrategy::InterRun { n: 4 }, SyncMode::Unsynchronized, 2),
        (
            PrefetchStrategy::InterRunAdaptive { n_min: 1, n_max: 8 },
            SyncMode::Unsynchronized,
            0,
        ),
    ];
    for (strategy, sync, write_disks) in scenarios {
        let mut cfg = ScenarioBuilder::new(6, 3).build().unwrap();
        cfg.run_blocks = 30;
        cfg.strategy = strategy;
        cfg.sync = sync;
        cfg.cache_blocks = 4 * 6 * strategy.depth().max(4);
        cfg.write = (write_disks > 0).then_some(pm_core::WriteSpec {
            disks: write_disks,
            buffer_blocks: 16,
        });
        cfg.seed = 13;
        let events = record(cfg);
        assert!(!events.is_empty(), "{strategy:?} recorded nothing");

        // Sim-time stamps are monotone per (side, disk, kind): a disk
        // serves requests one at a time, so issues, seek completions and
        // transfer completions each advance with the clock.
        let mut last: BTreeMap<(bool, u16, &str), pm_core::SimTime> = BTreeMap::new();
        // Every issued span completes exactly once per completion kind.
        let mut open: BTreeMap<(bool, u16, u64), (bool, bool)> = BTreeMap::new();
        for ev in &events {
            let Some((disk, output)) = ev.kind.disk() else {
                continue;
            };
            let prev = last.insert((output, disk, ev.kind.name()), ev.at);
            if let Some(prev) = prev {
                assert!(
                    prev <= ev.at,
                    "{strategy:?}: {} on disk {disk} (output={output}) went backwards",
                    ev.kind.name()
                );
            }
            let span = ev.kind.span().expect("disk events carry a span");
            let key = (output, disk, span);
            match ev.kind {
                EventKind::DiskIssue { .. } => {
                    assert!(
                        open.insert(key, (false, false)).is_none(),
                        "{strategy:?}: span {span} issued twice"
                    );
                }
                EventKind::DiskSeekDone { .. } => {
                    let entry = open.get_mut(&key).expect("seek-done without issue");
                    assert!(!entry.0, "{strategy:?}: span {span} seek-done twice");
                    entry.0 = true;
                }
                EventKind::DiskTransferDone { started, .. } => {
                    let entry = open.remove(&key).expect("transfer-done without issue");
                    assert!(entry.0, "{strategy:?}: span {span} finished without seek-done");
                    assert!(!entry.1);
                    assert!(started <= ev.at);
                }
                _ => unreachable!("disk() returned Some for a non-disk event"),
            }
        }
        assert!(
            open.is_empty(),
            "{strategy:?}: {} issues never completed",
            open.len()
        );
    }
}

#[test]
fn traced_runs_match_untraced_and_traces_match_across_jobs() {
    let mut cfg = ScenarioBuilder::new(6, 3).build().unwrap();
    cfg.run_blocks = 40;
    cfg.strategy = PrefetchStrategy::InterRun { n: 3 };
    cfg.cache_blocks = 4 * 6 * 3;
    cfg.seed = 21;

    let untraced = run_trials_parallel(&cfg, 4, 1).unwrap();
    let (traced, reference) = run_trials_traced(&cfg, 4, 1, None).unwrap();
    assert_eq!(untraced.reports, traced.reports, "tracing perturbed a run");

    for jobs in [2, 4, 0] {
        let (summary, sink) = run_trials_traced(&cfg, 4, jobs, None).unwrap();
        assert_eq!(summary.reports, untraced.reports, "jobs={jobs}");
        assert_eq!(sink.events(), reference.events(), "jobs={jobs}");
    }
}
