//! Cross-validation of the Markov admission-policy analysis
//! (`pm_analysis::markov`) against the discrete-event simulator.
//!
//! For one run per disk and `N = 1`, the chain and the simulator share the
//! same space accounting (frames commit at issue time), so the *average
//! blocks fetched per demand operation* should agree — the chain abstracts
//! only service times, which don't affect fetch sizes under the
//! all-or-nothing policy.

use pm_analysis::markov::{average_parallelism, Policy};
use pm_core::{
    AdmissionPolicy, MergeSim, PrefetchStrategy, ScenarioBuilder, SyncMode, UniformDepletion,
};
use pm_sim::SimRng;

/// Measures mean fetched blocks per demand op over several trials.
fn simulated_parallelism(d: u32, cache: u32, policy: AdmissionPolicy, trials: u32) -> f64 {
    let mut master = SimRng::seed_from_u64(2025);
    let mut total_fetched = 0u64;
    let mut total_ops = 0u64;
    for _ in 0..trials {
        let mut cfg = ScenarioBuilder::new(d, d).build().unwrap();
        cfg.run_blocks = 2_000;
        cfg.strategy = PrefetchStrategy::InterRun { n: 1 };
        cfg.sync = SyncMode::Unsynchronized;
        cfg.cache_blocks = cache;
        cfg.admission = policy;
        cfg.seed = master.next_u64();
        let report = MergeSim::new(cfg)
            .expect("valid")
            .run(&mut UniformDepletion);
        // Every block is fetched once; the initial load (d blocks) is not
        // a demand operation.
        total_fetched += report.blocks_merged - u64::from(d);
        total_ops += report.demand_ops;
    }
    total_fetched as f64 / total_ops as f64
}

#[test]
fn chain_predicts_simulated_fetch_sizes_all_or_nothing() {
    for (d, cache) in [(3u32, 9u32), (4, 16), (5, 15)] {
        let predicted = average_parallelism(d, cache, Policy::AllOrNothing);
        let measured = simulated_parallelism(d, cache, AdmissionPolicy::AllOrNothing, 3);
        let rel = (predicted - measured).abs() / predicted;
        assert!(
            rel < 0.05,
            "D={d} C={cache}: chain {predicted:.3} vs sim {measured:.3} (rel {rel:.3})"
        );
    }
}

#[test]
fn chain_predicts_simulated_fetch_sizes_greedy() {
    for (d, cache) in [(3u32, 9u32), (4, 12)] {
        let predicted = average_parallelism(d, cache, Policy::Greedy);
        let measured = simulated_parallelism(d, cache, AdmissionPolicy::Greedy, 3);
        let rel = (predicted - measured).abs() / predicted;
        assert!(
            rel < 0.05,
            "D={d} C={cache}: chain {predicted:.3} vs sim {measured:.3} (rel {rel:.3})"
        );
    }
}

#[test]
fn starved_cache_matches_unit_parallelism() {
    let measured = simulated_parallelism(4, 4, AdmissionPolicy::AllOrNothing, 2);
    assert!(
        (measured - 1.0).abs() < 0.02,
        "C = D must demand-fetch one block at a time: {measured}"
    );
}
