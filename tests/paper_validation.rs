//! End-to-end validation: the simulator must reproduce the paper's
//! closed-form predictions (eqs. 1–5) and quoted simulation results at the
//! paper's full scale (25/50 runs × 1000 blocks).
//!
//! Tolerances: the equations are exact for the no-overlap strategies, so we
//! allow a few percent (finite-sample noise plus the paper's own
//! `k/3` seek approximation); the eq. (5) inter-run estimate is itself a
//! "crude approximation" (mean instead of max of seeks), so it gets a wider
//! band.

use pm_analysis::{bounds, equations, ModelParams};
use pm_core::{MergeConfig, ScenarioBuilder, SyncMode, run_trials};
use pm_stats::relative_error;

const TRIALS: u32 = 3;

fn params() -> ModelParams {
    ModelParams::paper()
}

fn sim_secs(cfg: &MergeConfig) -> f64 {
    run_trials(cfg, TRIALS).expect("valid config").mean_total_secs
}

#[test]
fn eq1_single_disk_no_prefetch_k25() {
    let sim = sim_secs(&ScenarioBuilder::new(25, 1).build().unwrap());
    let analytic = equations::total_seconds(&params(), 25, equations::tau_single_no_prefetch(&params(), 25));
    // Paper: estimated 360.0 s, simulated ≈ 361 s.
    assert!(
        relative_error(sim, analytic) < 0.02,
        "sim={sim:.1}s analytic={analytic:.1}s"
    );
}

#[test]
fn eq1_single_disk_no_prefetch_k50() {
    let sim = sim_secs(&ScenarioBuilder::new(50, 1).build().unwrap());
    let analytic = equations::total_seconds(&params(), 50, equations::tau_single_no_prefetch(&params(), 50));
    // Paper: ≈ 915 s.
    assert!(
        relative_error(sim, analytic) < 0.02,
        "sim={sim:.1}s analytic={analytic:.1}s"
    );
}

#[test]
fn eq2_single_disk_intra_run() {
    for (k, n, _paper_secs) in [(25u32, 16u32, 73.1), (25, 30, 64.2), (50, 16, 158.4)] {
        let sim = sim_secs(&ScenarioBuilder::new(k, 1).intra(n).build().unwrap());
        let analytic = equations::total_seconds(&params(), k, equations::tau_single_intra(&params(), k, n));
        assert!(
            relative_error(sim, analytic) < 0.03,
            "k={k} N={n}: sim={sim:.1}s analytic={analytic:.1}s"
        );
    }
}

#[test]
fn eq3_multi_disk_no_prefetch() {
    for (k, d) in [(25u32, 5u32), (50, 10)] {
        let sim = sim_secs(&ScenarioBuilder::new(k, d).build().unwrap());
        let analytic =
            equations::total_seconds(&params(), k, equations::tau_multi_no_prefetch(&params(), k, d));
        // Paper: 281.9 s (k=25, D=5) and 563.5 s (k=50, D=10).
        assert!(
            relative_error(sim, analytic) < 0.02,
            "k={k} D={d}: sim={sim:.1}s analytic={analytic:.1}s"
        );
    }
}

#[test]
fn eq4_multi_disk_intra_synchronized() {
    for (k, d, n) in [(25u32, 5u32, 30u32), (25, 5, 10)] {
        let mut cfg = ScenarioBuilder::new(k, d).intra(n).build().unwrap();
        cfg.sync = SyncMode::Synchronized;
        let sim = sim_secs(&cfg);
        let analytic =
            equations::total_seconds(&params(), k, equations::tau_multi_intra_sync(&params(), k, d, n));
        // Paper quotes 61.6 s for k=25, D=5, N=30.
        assert!(
            relative_error(sim, analytic) < 0.03,
            "k={k} D={d} N={n}: sim={sim:.1}s analytic={analytic:.1}s"
        );
    }
}

#[test]
fn eq5_inter_run_synchronized() {
    // k=25, D=5, N=10, cache large enough for success ratio ≈ 1.
    let mut cfg = ScenarioBuilder::new(25, 5).inter(10).cache_blocks(2000).build().unwrap();
    cfg.sync = SyncMode::Synchronized;
    let summary = run_trials(&cfg, TRIALS).unwrap();
    let sim = summary.mean_total_secs;
    let analytic = equations::total_seconds(&params(), 25, equations::tau_inter_sync(&params(), 25, 5, 10));
    // Paper: estimate 18.1 s, simulated ≈ 17.4 s. Eq. (5) approximates the
    // max of D seeks by the mean, so allow a wider band.
    assert!(
        relative_error(sim, analytic) < 0.10,
        "sim={sim:.1}s analytic={analytic:.1}s"
    );
    let ratio = summary.mean_success_ratio.unwrap();
    assert!(ratio > 0.98, "success ratio {ratio} should be ~1");
}

#[test]
fn urn_game_concurrency_of_unsync_intra() {
    // Unsynchronized intra-run prefetching at large N: measured disk
    // concurrency approaches the urn-game prediction (exact E[L]:
    // 2.51 for D=5).
    let cfg = ScenarioBuilder::new(25, 5).intra(30).build().unwrap();
    let summary = run_trials(&cfg, TRIALS).unwrap();
    let predicted = pm_analysis::urn::expected_concurrency(5);
    assert!(
        (summary.mean_concurrency - predicted).abs() < 0.5,
        "measured {:.2} vs urn prediction {predicted:.2}",
        summary.mean_concurrency
    );
}

#[test]
fn unsync_intra_asymptotic_time() {
    // Paper: k=25, D=5, N=30 unsynchronized ≈ 28-29 s simulated (the
    // asymptotic estimate 24.9 s is not yet reached at N=30).
    let sim = sim_secs(&ScenarioBuilder::new(25, 5).intra(30).build().unwrap());
    let asymptotic = bounds::intra_unsync_asymptotic_secs(&params(), 25, 5, 30);
    assert!(sim > asymptotic, "sim={sim:.1}s must exceed asymptote {asymptotic:.1}s");
    assert!(
        sim < asymptotic * 1.35,
        "sim={sim:.1}s too far above asymptote {asymptotic:.1}s"
    );
}

#[test]
fn inter_run_approaches_transfer_bound_with_big_cache() {
    // k=25, D=5, N=50, huge cache: the paper reports ≈ 12.2 s against the
    // 10.8 s lower bound.
    let cfg = ScenarioBuilder::new(25, 5).inter(50).cache_blocks(4000).build().unwrap();
    let sim = sim_secs(&cfg);
    let bound = bounds::multi_disk_lower_bound_secs(&params(), 25, 5);
    assert!(sim >= bound, "sim={sim:.1}s below bound {bound:.1}s");
    assert!(
        sim < bound * 1.25,
        "sim={sim:.1}s should be within 25% of the bound {bound:.1}s"
    );
}

#[test]
fn superlinear_speedup_over_single_disk_baseline() {
    // The headline claim: prefetching with D disks yields superlinear
    // speedup over the single-disk demand baseline (seek reduction +
    // latency amortization + concurrency).
    let baseline = sim_secs(&ScenarioBuilder::new(25, 1).build().unwrap());
    let inter = sim_secs(&ScenarioBuilder::new(25, 5).inter(10).cache_blocks(1200).build().unwrap());
    let speedup = baseline / inter;
    assert!(speedup > 5.0, "speedup {speedup:.1} should exceed D = 5");
}
