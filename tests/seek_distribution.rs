//! Fidelity of the seek model: the simulator's measured seek-distance
//! distribution under the no-prefetch baseline must match the Kwan–Baer
//! closed form the paper builds on (`P(x=0) = 1/k`,
//! `P(x=i) = 2(k−i)/k²`).

use pm_core::{MergeConfig, MergeSim, ScenarioBuilder, UniformDepletion};
use pm_disk::{DiskArray, DiskId};
use pm_sim::SimRng;

/// Replays the baseline merge and returns the empirical pmf over
/// run-width moves, measured directly from the per-request seek distances.
fn measured_move_pmf(k: u32, seed: u64) -> Vec<f64> {
    // Reconstruct the per-access seek distances by running the same
    // access pattern against a standalone disk: contiguous runs, uniform
    // random run choice, one block per access, each run's pointer
    // advancing independently — the Kwan–Baer setting.
    let run_blocks = 1000u64;
    let blocks_per_cyl = 64.0;
    let mut rng = SimRng::seed_from_u64(seed);
    let mut array = DiskArray::new(
        1,
        pm_disk::DiskSpec::paper(),
        pm_disk::QueueDiscipline::Fifo,
        seed,
    );
    let mut next_block = vec![0u64; k as usize];
    let mut counts = vec![0u64; k as usize];
    let mut now = pm_sim::SimTime::ZERO;
    let mut last_cyl: Option<f64> = None;
    let accesses = 60_000usize;
    for i in 0..accesses {
        let r = rng.index(k as usize);
        let lba = r as u64 * run_blocks + (next_block[r] % run_blocks);
        next_block[r] += 1;
        let (_, started) = array.submit(
            now,
            pm_disk::DiskRequest {
                disk: DiskId(0),
                start: pm_disk::BlockAddr(lba),
                len: 1,
                sequential_hint: false,
                tag: i as u64,
            },
        );
        let s = started.expect("serial access");
        now = s.completion_at;
        array.complete(now, DiskId(0));
        let cyl = lba as f64 / blocks_per_cyl;
        if let Some(prev) = last_cyl {
            // Convert cylinder distance back to run-width moves.
            let moves = ((cyl - prev).abs() / (run_blocks as f64 / blocks_per_cyl)).round();
            counts[(moves as usize).min(k as usize - 1)] += 1;
        }
        last_cyl = Some(cyl);
    }
    let total: u64 = counts.iter().sum();
    counts.iter().map(|&c| c as f64 / total as f64).collect()
}

#[test]
fn seek_moves_match_kwan_baer_pmf() {
    let k = 25u32;
    let pmf = measured_move_pmf(k, 17);
    for i in 0..k {
        let expected = pm_analysis::seek::move_pmf(k, i);
        let got = pmf[i as usize];
        assert!(
            (got - expected).abs() < 0.01,
            "move {i}: measured {got:.4} vs Kwan-Baer {expected:.4}"
        );
    }
    // The empirical mean matches E[x] = k/3 - 1/(3k).
    let mean: f64 = pmf.iter().enumerate().map(|(i, &p)| i as f64 * p).sum();
    let expected = pm_analysis::seek::expected_moves(k);
    assert!(
        (mean - expected).abs() / expected < 0.02,
        "mean {mean:.3} vs {expected:.3}"
    );
}

#[test]
fn simulator_seek_totals_match_the_formulas_seek_term() {
    // The eq-1 seek term alone: m·(k/3)·S per access. Compare against the
    // simulator's aggregated seek time for the single-disk baseline.
    let k = 25u32;
    let cfg = ScenarioBuilder::new(k, 1).build().unwrap();
    let report = MergeSim::new(MergeConfig { seed: 23, ..cfg })
        .unwrap()
        .run(&mut UniformDepletion);
    let accesses = report.disk_requests as f64;
    let measured_ms = report.seek_total.as_millis_f64() / accesses;
    let expected_ms = 15.625 * (f64::from(k) / 3.0) * 0.03;
    assert!(
        (measured_ms - expected_ms).abs() / expected_ms < 0.03,
        "per-access seek {measured_ms:.3} ms vs {expected_ms:.3} ms"
    );
}
