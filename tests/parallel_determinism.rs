//! The determinism contract of the parallel execution engine: for every
//! configuration and worker count, `run_trials_parallel` must be
//! **bit-identical** to the sequential `run_trials` baseline — same
//! per-trial reports (total time in nanoseconds, per-disk busy times,
//! success ratios, every counter), same aggregate summary, in the same
//! trial order. This is what makes `--jobs n` safe to use anywhere the
//! paper's numbers are reproduced.

use pm_core::{
    MergeConfig, MergeSim, ScenarioBuilder, TrialSummary, UniformDepletion, run_trials, run_trials_parallel,
};
use pm_sim::derive_seeds;

/// The intra/inter × D × cache grid the suite sweeps.
fn config_grid() -> Vec<(String, MergeConfig)> {
    let mut grid = Vec::new();
    for d in [1u32, 5] {
        let mut intra = ScenarioBuilder::new(8, d).intra(4).build().unwrap();
        intra.run_blocks = 40;
        grid.push((format!("intra D={d}"), intra));
        let mut inter = ScenarioBuilder::new(8, d).inter(4).cache_blocks(8 * 4 + 20).build().unwrap();
        inter.run_blocks = 40;
        grid.push((format!("inter D={d}"), inter));
    }
    grid
}

fn assert_reports_bit_identical(label: &str, seq: &TrialSummary, par: &TrialSummary) {
    assert_eq!(seq.trials(), par.trials(), "{label}: trial count");
    for (i, (s, p)) in seq.reports.iter().zip(&par.reports).enumerate() {
        // `MergeReport` derives PartialEq over every field, so this alone
        // is the bit-identity check; the targeted asserts below give
        // readable failures for the quantities the paper reports.
        assert_eq!(
            s.total.as_nanos(),
            p.total.as_nanos(),
            "{label}: trial {i} total ns"
        );
        assert_eq!(
            s.per_disk_busy, p.per_disk_busy,
            "{label}: trial {i} per-disk busy"
        );
        assert_eq!(
            s.success_ratio.map(f64::to_bits),
            p.success_ratio.map(f64::to_bits),
            "{label}: trial {i} success ratio"
        );
        assert_eq!(s, p, "{label}: trial {i} full report");
    }
}

fn assert_summaries_bit_identical(label: &str, seq: &TrialSummary, par: &TrialSummary) {
    assert_eq!(
        seq.mean_total_secs.to_bits(),
        par.mean_total_secs.to_bits(),
        "{label}: mean total"
    );
    assert_eq!(
        seq.mean_concurrency.to_bits(),
        par.mean_concurrency.to_bits(),
        "{label}: mean concurrency"
    );
    assert_eq!(
        seq.mean_busy_disks.to_bits(),
        par.mean_busy_disks.to_bits(),
        "{label}: mean busy disks"
    );
    assert_eq!(
        seq.mean_success_ratio.map(f64::to_bits),
        par.mean_success_ratio.map(f64::to_bits),
        "{label}: mean success ratio"
    );
    assert_eq!(
        seq.ci_total_secs.half_width.to_bits(),
        par.ci_total_secs.half_width.to_bits(),
        "{label}: CI half-width"
    );
}

#[test]
fn parallel_trials_match_sequential_across_the_grid() {
    for (name, cfg) in config_grid() {
        for trials in [1u32, 4, 7] {
            let seq = run_trials(&cfg, trials).expect("valid config");
            for jobs in [1usize, 2, 8] {
                let label = format!("{name} trials={trials} jobs={jobs}");
                let par = run_trials_parallel(&cfg, trials, jobs).expect("valid config");
                assert_reports_bit_identical(&label, &seq, &par);
                assert_summaries_bit_identical(&label, &seq, &par);
            }
        }
    }
}

#[test]
fn jobs_zero_uses_all_cores_and_stays_identical() {
    let (name, cfg) = config_grid().remove(1);
    let seq = run_trials(&cfg, 5).expect("valid config");
    let par = run_trials_parallel(&cfg, 5, 0).expect("valid config");
    assert_reports_bit_identical(&format!("{name} jobs=0"), &seq, &par);
}

#[test]
fn trial_order_is_the_derived_seed_order() {
    // Trial i's report must land at index i: re-simulating seed i directly
    // reproduces exactly reports[i], for a worker pool of any size.
    let mut cfg = ScenarioBuilder::new(6, 3).inter(3).cache_blocks(6 * 3 + 10).build().unwrap();
    cfg.run_blocks = 30;
    let seeds = derive_seeds(cfg.seed, 6);
    let par = run_trials_parallel(&cfg, 6, 4).expect("valid config");
    for (i, seed) in seeds.iter().enumerate() {
        let mut trial_cfg = cfg;
        trial_cfg.seed = *seed;
        let direct = MergeSim::new(trial_cfg)
            .expect("valid config")
            .run(&mut UniformDepletion);
        assert_eq!(par.reports[i], direct, "trial {i} out of order");
    }
}

#[test]
fn summary_aggregates_recompute_from_reports() {
    // from_reports is a pure function of the (ordered) reports, so the
    // parallel summary must equal re-aggregating the sequential reports.
    let mut cfg = ScenarioBuilder::new(10, 5).intra(6).build().unwrap();
    cfg.run_blocks = 50;
    let seq = run_trials(&cfg, 7).expect("valid config");
    let par = run_trials_parallel(&cfg, 7, 8).expect("valid config");
    let recomputed = TrialSummary::from_reports(par.reports.clone());
    assert_summaries_bit_identical("recomputed", &seq, &recomputed);
}
