//! Shape tests for the reproduced figures: without matching absolute
//! numbers point-by-point, each figure must exhibit the qualitative
//! structure the paper reports — who wins, what saturates, where the
//! orderings lie.

use pm_core::run_trials;
use pm_workload::paper::{cache_sweep, fig2_panel, fig3_cpu_sweep, CachePanel, Fig2Panel};
use pm_workload::Sweep;

const TRIALS: u32 = 2;

/// Runs a thinned version of a sweep (first, middle, last points).
fn run_thin(sweep: &Sweep) -> Vec<(f64, f64, Option<f64>)> {
    let idx = [0, sweep.points.len() / 2, sweep.points.len() - 1];
    idx.iter()
        .map(|&i| {
            let p = &sweep.points[i];
            let s = run_trials(&p.config, TRIALS).expect("valid");
            (p.x, s.mean_total_secs, s.mean_success_ratio)
        })
        .collect()
}

#[test]
fn fig2a_orderings_hold() {
    let sweeps = fig2_panel(Fig2Panel::A, 11);
    let inter5 = run_thin(&sweeps[0]);
    let intra5 = run_thin(&sweeps[1]);
    let intra1 = run_thin(&sweeps[2]);
    for ((i5, d5), d1) in inter5.iter().zip(&intra5).zip(&intra1) {
        // At every N: inter-run (5 disks) <= intra-run (5 disks) <= 1 disk.
        assert!(i5.1 <= d5.1 * 1.02, "N={}: inter {} vs intra5 {}", i5.0, i5.1, d5.1);
        assert!(d5.1 < d1.1, "N={}: intra5 {} vs intra1 {}", d5.0, d5.1, d1.1);
    }
    // Time decreases with N for each curve.
    for curve in [&inter5, &intra5, &intra1] {
        assert!(curve[0].1 > curve[2].1, "time must fall with N: {curve:?}");
    }
}

#[test]
fn fig2b_more_disks_help_inter_run() {
    let sweeps = fig2_panel(Fig2Panel::B, 12);
    let inter10 = run_thin(&sweeps[0]);
    let inter5 = run_thin(&sweeps[1]);
    // At large N, 10 disks beat 5 disks for the same k.
    let last10 = inter10.last().unwrap();
    let last5 = inter5.last().unwrap();
    assert!(last10.1 < last5.1, "10 disks {} vs 5 disks {}", last10.1, last5.1);
}

#[test]
fn fig3_sync_hierarchy() {
    let sweeps = fig3_cpu_sweep(13);
    // Curves: inter-unsync, inter-sync, intra-unsync, intra-sync.
    let results: Vec<Vec<(f64, f64, Option<f64>)>> = sweeps.iter().map(run_thin).collect();
    for (((iu, is_), du), ds) in results[0]
        .iter()
        .zip(&results[1])
        .zip(&results[2])
        .zip(&results[3])
    {
        let inter_unsync = iu.1;
        let inter_sync = is_.1;
        let intra_unsync = du.1;
        let intra_sync = ds.1;
        // The paper's figure 3.3 ordering at every CPU speed:
        assert!(inter_unsync <= inter_sync * 1.02);
        assert!(inter_sync < intra_unsync * 1.25, "inter sync should be competitive");
        assert!(intra_unsync < intra_sync);
        // Inter-run (either mode) beats intra-run across the whole range.
        assert!(inter_unsync < intra_unsync);
    }
    // Total time grows with CPU cost for the I/O-efficient strategy.
    assert!(results[0][2].1 > results[0][0].1);
}

#[test]
fn fig5_time_falls_and_saturates_with_cache() {
    for sweep in cache_sweep(CachePanel::K25D5, 14) {
        let pts = run_thin(&sweep);
        // More cache never hurts (tolerate 3% noise).
        assert!(pts[1].1 <= pts[0].1 * 1.03, "{}: {:?}", sweep.label, pts);
        assert!(pts[2].1 <= pts[1].1 * 1.03, "{}: {:?}", sweep.label, pts);
        // The minimum-cache point is much slower than the asymptote.
        assert!(pts[0].1 > pts[2].1 * 1.15, "{}: no cache effect? {:?}", sweep.label, pts);
    }
}

#[test]
fn fig6_success_ratio_rises_to_one() {
    for sweep in cache_sweep(CachePanel::K25D5, 15) {
        let pts = run_thin(&sweep);
        let r0 = pts[0].2.expect("inter-run reports ratios");
        let r2 = pts[2].2.expect("inter-run reports ratios");
        assert!(r0 < 0.5, "{}: minimum cache ratio {r0}", sweep.label);
        assert!(r2 > 0.9, "{}: max cache ratio {r2}", sweep.label);
        assert!(r2 > r0);
    }
}

#[test]
fn fig5_optimal_n_depends_on_cache() {
    // At a small cache, shallow prefetching wins; at a large cache, deep
    // prefetching wins — the paper's central trade-off.
    let sweeps = cache_sweep(CachePanel::K25D5, 16);
    let at = |sweep: &Sweep, cache: f64| {
        let p = sweep
            .points
            .iter()
            .min_by(|a, b| (a.x - cache).abs().total_cmp(&(b.x - cache).abs()))
            .unwrap();
        run_trials(&p.config, TRIALS).unwrap().mean_total_secs
    };
    // N = 5 vs N = 10 at a 400-block cache: the shallower depth wins
    // (N = 10's success ratio is still near zero there).
    let n5_small = at(&sweeps[1], 400.0);
    let n10_small = at(&sweeps[2], 400.0);
    assert!(n5_small < n10_small, "small cache: N=5 {n5_small} vs N=10 {n10_small}");
    // At 1200 blocks: the deeper depth wins.
    let n5_big = at(&sweeps[1], 1200.0);
    let n10_big = at(&sweeps[2], 1200.0);
    assert!(n10_big < n5_big, "big cache: N=10 {n10_big} vs N=5 {n5_big}");
}
