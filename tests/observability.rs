//! End-to-end guarantees of the `pm-obs` experiment layer:
//!
//! * the rendered HTML report of a pinned tiny suite matches its golden
//!   snapshot byte-for-byte (regenerate with `UPDATE_GOLDEN=1`),
//! * manifests are byte-identical for every worker-thread count, with
//!   convergence-controlled trials and trace rollups enabled,
//! * a manifest survives a render → parse → render round trip.

use std::path::PathBuf;

use pm_core::MergeConfig;
use pm_core::ScenarioBuilder;
use pm_obs::{
    parse_manifest, render_manifest, render_report, run_suite, ConvergencePolicy, NullProgress,
    PointSpec, RecordKind, SuiteOptions, TrialsMode,
};

/// A pinned miniature of the real validation suite: one case of each
/// record kind plus a two-point sweep, small enough to run in debug mode.
fn tiny_suite() -> Vec<PointSpec> {
    let small = |mut cfg: MergeConfig| {
        cfg.run_blocks = 40;
        cfg.seed = 42;
        cfg
    };
    let sweep_pt = |n: u32| PointSpec {
        kind: RecordKind::SweepPoint,
        label: format!("tiny intra @ N={n}"),
        sweep: Some("tiny intra".into()),
        x: Some(f64::from(n)),
        x_label: Some("prefetch depth N".into()),
        config: small(ScenarioBuilder::new(4, 1).intra(n).build().unwrap()),
    };
    vec![
        PointSpec {
            kind: RecordKind::T1Case,
            label: "tiny eq2: intra, k=4, D=1, N=5".into(),
            sweep: None,
            x: None,
            x_label: None,
            config: small(ScenarioBuilder::new(4, 1).intra(5).build().unwrap()),
        },
        PointSpec {
            kind: RecordKind::T2Concurrency,
            label: "tiny urn E[D]: intra, k=4, D=2, N=5".into(),
            sweep: None,
            x: None,
            x_label: None,
            config: small(ScenarioBuilder::new(4, 2).intra(5).build().unwrap()),
        },
        sweep_pt(3),
        sweep_pt(6),
    ]
}

fn tiny_opts(jobs: usize) -> SuiteOptions {
    SuiteOptions {
        // Auto mode so convergence decisions land in the manifest and the
        // HTML convergence table renders.
        trials: TrialsMode::Auto(ConvergencePolicy {
            rel_ci: 0.05,
            min_trials: 3,
            max_trials: 6,
            ..ConvergencePolicy::default()
        }),
        jobs,
        trace: true,
        ..SuiteOptions::new(42)
    }
}

#[test]
fn html_report_matches_golden_snapshot() {
    let records = run_suite(&tiny_suite(), &tiny_opts(1), &NullProgress).unwrap();
    let html = render_report(&records);
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/report_small.html");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &html).expect("write golden");
    }
    let golden = std::fs::read_to_string(&path)
        .expect("golden snapshot missing; rerun with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        html, golden,
        "HTML report drifted from tests/golden/report_small.html; \
         verify the change is intended and rerun with UPDATE_GOLDEN=1"
    );
}

#[test]
fn manifests_are_jobs_invariant_end_to_end() {
    let points = tiny_suite();
    let reference = render_manifest(&run_suite(&points, &tiny_opts(1), &NullProgress).unwrap());
    for jobs in [2, 8, 0] {
        let manifest =
            render_manifest(&run_suite(&points, &tiny_opts(jobs), &NullProgress).unwrap());
        assert_eq!(manifest, reference, "manifest differs at jobs={jobs}");
    }
}

#[test]
fn manifest_round_trips_through_parse() {
    let records = run_suite(&tiny_suite(), &tiny_opts(1), &NullProgress).unwrap();
    let manifest = render_manifest(&records);
    let parsed = parse_manifest(&manifest).unwrap();
    assert_eq!(parsed, records);
    assert_eq!(render_manifest(&parsed), manifest);
    // The re-parsed records render the same report, so `pmerge report
    // --from` reproduces `pmerge validate --html` exactly.
    assert_eq!(render_report(&parsed), render_report(&records));
}
