//! Differential tests of multi-pass execution (the PR 6 acceptance
//! harness).
//!
//! Three properties:
//!
//! 1. The planner's pass count matches the analytic `ceil(log_F k)` for
//!    uniform run populations.
//! 2. A multi-pass merge produces output identical to the single-pass
//!    engine (and the sorted reference) across every backend, worker
//!    count, and plan policy.
//! 3. On the latency backend, each pass's modeled busy time lands on
//!    the simulator's per-pass prediction within the engine tolerance.
//!
//! Plus the crash-safety contract: a gracefully failing execution
//! removes its own staging token, only a hard process death leaves one
//! behind, and the next invocation over the same root sweeps dead
//! owners' tokens (never a live sibling's) before producing a correct
//! output.

use std::path::PathBuf;

use pm_core::ScenarioBuilder;
use pm_engine::{
    clean_stale_passes, ExecConfig, MergeEngine, MultiPassExecutor, MultiPassOptions,
    PassBackend, ThreadedQueue,
};
use pm_extsort::plan::{min_passes, plan_merge_tree, PlanPolicy};
use pm_extsort::{generate, run_formation, Record};

/// Records per on-device block used throughout.
const RPB: u32 = 20;

/// Generates `total` uniform records and forms sorted runs of up to
/// `memory` records each.
fn form_runs(total: usize, memory: usize, seed: u64) -> Vec<Vec<Record>> {
    let input = generate::uniform(total, seed);
    run_formation::load_sort(&input, memory)
}

/// The expected merged output: every input record in key order.
fn reference(runs: &[Vec<Record>]) -> Vec<Record> {
    let mut all: Vec<Record> = runs.iter().flatten().copied().collect();
    all.sort_by_key(|r| (r.key, r.rid));
    all
}

/// Per-run block counts for the test block factor.
fn run_blocks(runs: &[Vec<Record>]) -> Vec<u32> {
    runs.iter()
        .map(|r| (r.len() as u32).div_ceil(RPB).max(1))
        .collect()
}

/// Engine options shared by the differential matrix.
fn opts(jobs: usize, time_scale: f64) -> MultiPassOptions {
    MultiPassOptions {
        records_per_block: RPB,
        queue_depth: 0,
        jobs,
        time_scale,
    }
}

/// A unique scratch directory under the system temp dir.
fn unique_dir() -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("pm-multipass-test-{}-{n}", std::process::id()))
}

/// One single-pass merge on the memory backend: the reference the
/// multi-pass tree must reproduce byte for byte.
fn single_pass_reference(runs: &[Vec<Record>]) -> Vec<Record> {
    let cfg = ScenarioBuilder::new(runs.len() as u32, 2)
        .inter(2)
        .seed(7)
        .build()
        .unwrap();
    let mut exec = ExecConfig::new(cfg);
    exec.records_per_block = RPB;
    let engine = MergeEngine::new(exec, runs.iter().map(Vec::len).collect()).unwrap();
    let mut queue = ThreadedQueue::memory(
        cfg.disks as usize,
        engine.block_bytes(),
        engine.queue_options(),
    );
    engine.load(&mut queue, runs).unwrap();
    engine.execute(Box::new(queue)).unwrap().output
}

#[test]
fn pass_count_matches_analytic_form_for_uniform_runs() {
    for k in [2u32, 5, 8, 9, 16, 27, 64] {
        for f in [2u32, 3, 4, 8] {
            let lens = vec![10u32; k as usize];
            for policy in [PlanPolicy::GreedyMax, PlanPolicy::Balanced] {
                let plan = plan_merge_tree(&lens, f, policy).unwrap();
                assert_eq!(
                    plan.num_passes() as u32,
                    min_passes(k, f),
                    "k={k} F={f} {policy:?}"
                );
            }
        }
    }
}

#[test]
fn multipass_output_matches_single_pass_across_backends_jobs_policies() {
    // k = 16 runs, fan-in 4: a genuine two-pass tree. Keys are unique
    // with overwhelming probability at this size; assert it so the
    // sorted reference is the only valid merge output and byte-for-byte
    // comparison across paths is meaningful.
    let runs = form_runs(6000, 375, 61);
    assert_eq!(runs.len(), 16);
    let expect = reference(&runs);
    assert!(
        expect.windows(2).all(|w| w[0].key < w[1].key),
        "seed produced duplicate keys; pick another"
    );

    let single = single_pass_reference(&runs);
    assert_eq!(single, expect);

    let base = ScenarioBuilder::new(4, 2).inter(2).seed(7).build().unwrap();
    for policy in [PlanPolicy::GreedyMax, PlanPolicy::Balanced] {
        let plan = plan_merge_tree(&run_blocks(&runs), 4, policy).unwrap();
        assert_eq!(plan.num_passes(), 2, "{policy:?}");
        for jobs in [1usize, 4] {
            for backend_id in ["mem", "file", "latency"] {
                let (backend, scale, root) = match backend_id {
                    "mem" => (PassBackend::Memory, 1.0, None),
                    "latency" => (PassBackend::Latency, 5e-4, None),
                    _ => {
                        let dir = unique_dir();
                        (PassBackend::File { root: dir.clone() }, 1.0, Some(dir))
                    }
                };
                let exec = MultiPassExecutor::new(&plan, base, opts(jobs, scale), backend);
                let out = exec
                    .run(runs.clone())
                    .unwrap_or_else(|e| panic!("{policy:?} jobs={jobs} {backend_id}: {e}"));
                assert_eq!(
                    out.output, single,
                    "{policy:?} jobs={jobs} {backend_id}: diverged from single-pass"
                );
                assert_eq!(out.passes.len(), 2);
                let records: u64 = out.output.len() as u64;
                for p in &out.passes {
                    assert_eq!(
                        p.records_merged, records,
                        "every record moves once per pass"
                    );
                }
                if let Some(dir) = root {
                    // The executor removed each pass's staging directory.
                    let leftover = std::fs::read_dir(&dir)
                        .map(|it| it.count())
                        .unwrap_or(0);
                    assert_eq!(leftover, 0, "staging not cleaned under {}", dir.display());
                    let _ = std::fs::remove_dir_all(&dir);
                }
            }
        }
    }
}

#[test]
fn latency_backend_per_pass_busy_matches_prediction() {
    let tol = 0.02;
    let runs = form_runs(4000, 250, 83);
    assert_eq!(runs.len(), 16);
    let base = ScenarioBuilder::new(4, 2).inter(2).seed(29).build().unwrap();
    for policy in [PlanPolicy::GreedyMax, PlanPolicy::Balanced] {
        let plan = plan_merge_tree(&run_blocks(&runs), 4, policy).unwrap();
        let exec = MultiPassExecutor::new(&plan, base, opts(0, 5e-4), PassBackend::Latency);
        let out = exec.run(runs.clone()).unwrap();
        for p in &out.passes {
            let predicted = p.predicted_busy.as_secs_f64();
            let measured = p.modeled_busy.as_secs_f64();
            assert!(predicted > 0.0, "pass {} predicted nothing", p.pass);
            let ratio = measured / predicted;
            assert!(
                (ratio - 1.0).abs() <= tol,
                "{policy:?} pass {}: modeled busy {measured:.4}s vs predicted \
                 {predicted:.4}s (ratio {ratio:.4})",
                p.pass
            );
        }
    }
}

#[test]
fn interrupted_execution_cleans_up_and_stale_tokens_are_swept() {
    let runs = form_runs(3000, 188, 47);
    assert_eq!(runs.len(), 16);
    let expect = reference(&runs);
    let base = ScenarioBuilder::new(4, 2).inter(2).seed(13).build().unwrap();
    let plan = plan_merge_tree(&run_blocks(&runs), 4, PlanPolicy::GreedyMax).unwrap();
    let root = unique_dir();

    // Graceful failure in the window after pass 0 completes but before
    // its staging directory is removed: the error propagates and the
    // invocation removes its own staging token on the way out (a live
    // process's token would otherwise survive every liveness sweep).
    let exec = MultiPassExecutor::new(
        &plan,
        base,
        opts(0, 1.0),
        PassBackend::File { root: root.clone() },
    );
    let err = exec
        .run_with_hook(runs.clone(), |pass| {
            if pass == 0 {
                Err(pm_core::PmError::io(
                    "injected crash between passes",
                    std::io::Error::other("fault injection"),
                ))
            } else {
                Ok(())
            }
        })
        .unwrap_err();
    assert!(err.to_string().contains("injected crash"), "{err}");
    // No partial output and no leftover staging under the root.
    let leftover = std::fs::read_dir(&root).map(|it| it.count()).unwrap_or(0);
    assert_eq!(leftover, 0, "graceful failure left staging behind");

    // A hard crash can't run the error path: simulate its residue — a
    // dead owner's token (pid far beyond pid_max) with pass/group
    // litter, plus a legacy bare pass directory from an old layout.
    let dead = root.join("exec-999999999-3").join("pass-00").join("group-00");
    std::fs::create_dir_all(&dead).unwrap();
    std::fs::write(dead.join("disk-00.bin"), b"stale").unwrap();
    std::fs::create_dir_all(root.join("pass-07")).unwrap();

    // The next invocation over the same root sweeps both stale dirs and
    // completes correctly, leaving the root empty.
    let out = exec.run(runs.clone()).unwrap();
    assert_eq!(out.output, expect);
    let leftover = std::fs::read_dir(&root).map(|it| it.count()).unwrap_or(0);
    assert_eq!(leftover, 0, "stale staging survived the rerun");

    // clean_stale_passes is also callable directly and idempotent.
    assert_eq!(clean_stale_passes(&root).unwrap(), 0);
    let _ = std::fs::remove_dir_all(&root);
}
