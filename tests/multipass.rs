//! Differential tests of multi-pass execution (the PR 6 acceptance
//! harness).
//!
//! Three properties:
//!
//! 1. The planner's pass count matches the analytic `ceil(log_F k)` for
//!    uniform run populations.
//! 2. A multi-pass merge produces output identical to the single-pass
//!    engine (and the sorted reference) across every backend, worker
//!    count, and plan policy.
//! 3. On the latency backend, each pass's modeled busy time lands on
//!    the simulator's per-pass prediction within the engine tolerance.
//!
//! Plus the crash-safety contract: an execution interrupted between
//! passes leaves its staging directory behind, and the next invocation
//! over the same root cleans it up before producing a correct output.

use std::path::PathBuf;
use std::sync::Arc;

use pm_core::ScenarioBuilder;
use pm_engine::{
    clean_stale_passes, ExecConfig, MemoryDevice, MergeEngine, MultiPassExecutor,
    MultiPassOptions, PassBackend,
};
use pm_extsort::plan::{min_passes, plan_merge_tree, PlanPolicy};
use pm_extsort::{generate, run_formation, Record};

/// Records per on-device block used throughout.
const RPB: u32 = 20;

/// Generates `total` uniform records and forms sorted runs of up to
/// `memory` records each.
fn form_runs(total: usize, memory: usize, seed: u64) -> Vec<Vec<Record>> {
    let input = generate::uniform(total, seed);
    run_formation::load_sort(&input, memory)
}

/// The expected merged output: every input record in key order.
fn reference(runs: &[Vec<Record>]) -> Vec<Record> {
    let mut all: Vec<Record> = runs.iter().flatten().copied().collect();
    all.sort_by_key(|r| (r.key, r.rid));
    all
}

/// Per-run block counts for the test block factor.
fn run_blocks(runs: &[Vec<Record>]) -> Vec<u32> {
    runs.iter()
        .map(|r| (r.len() as u32).div_ceil(RPB).max(1))
        .collect()
}

/// Engine options shared by the differential matrix.
fn opts(jobs: usize, time_scale: f64) -> MultiPassOptions {
    MultiPassOptions {
        records_per_block: RPB,
        queue_capacity: 8,
        jobs,
        time_scale,
    }
}

/// A unique scratch directory under the system temp dir.
fn unique_dir() -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("pm-multipass-test-{}-{n}", std::process::id()))
}

/// One single-pass merge on the memory backend: the reference the
/// multi-pass tree must reproduce byte for byte.
fn single_pass_reference(runs: &[Vec<Record>]) -> Vec<Record> {
    let cfg = ScenarioBuilder::new(runs.len() as u32, 2)
        .inter(2)
        .seed(7)
        .build()
        .unwrap();
    let mut exec = ExecConfig::new(cfg);
    exec.records_per_block = RPB;
    exec.queue_capacity = 8;
    let engine = MergeEngine::new(exec, runs.iter().map(Vec::len).collect()).unwrap();
    let mut dev = MemoryDevice::new(cfg.disks as usize, engine.block_bytes());
    engine.load(&mut dev, runs).unwrap();
    engine.execute(Arc::new(dev)).unwrap().output
}

#[test]
fn pass_count_matches_analytic_form_for_uniform_runs() {
    for k in [2u32, 5, 8, 9, 16, 27, 64] {
        for f in [2u32, 3, 4, 8] {
            let lens = vec![10u32; k as usize];
            for policy in [PlanPolicy::GreedyMax, PlanPolicy::Balanced] {
                let plan = plan_merge_tree(&lens, f, policy).unwrap();
                assert_eq!(
                    plan.num_passes() as u32,
                    min_passes(k, f),
                    "k={k} F={f} {policy:?}"
                );
            }
        }
    }
}

#[test]
fn multipass_output_matches_single_pass_across_backends_jobs_policies() {
    // k = 16 runs, fan-in 4: a genuine two-pass tree. Keys are unique
    // with overwhelming probability at this size; assert it so the
    // sorted reference is the only valid merge output and byte-for-byte
    // comparison across paths is meaningful.
    let runs = form_runs(6000, 375, 61);
    assert_eq!(runs.len(), 16);
    let expect = reference(&runs);
    assert!(
        expect.windows(2).all(|w| w[0].key < w[1].key),
        "seed produced duplicate keys; pick another"
    );

    let single = single_pass_reference(&runs);
    assert_eq!(single, expect);

    let base = ScenarioBuilder::new(4, 2).inter(2).seed(7).build().unwrap();
    for policy in [PlanPolicy::GreedyMax, PlanPolicy::Balanced] {
        let plan = plan_merge_tree(&run_blocks(&runs), 4, policy).unwrap();
        assert_eq!(plan.num_passes(), 2, "{policy:?}");
        for jobs in [1usize, 4] {
            for backend_id in ["mem", "file", "latency"] {
                let (backend, scale, root) = match backend_id {
                    "mem" => (PassBackend::Memory, 1.0, None),
                    "latency" => (PassBackend::Latency, 5e-4, None),
                    _ => {
                        let dir = unique_dir();
                        (PassBackend::File { root: dir.clone() }, 1.0, Some(dir))
                    }
                };
                let exec = MultiPassExecutor::new(&plan, base, opts(jobs, scale), backend);
                let out = exec
                    .run(runs.clone())
                    .unwrap_or_else(|e| panic!("{policy:?} jobs={jobs} {backend_id}: {e}"));
                assert_eq!(
                    out.output, single,
                    "{policy:?} jobs={jobs} {backend_id}: diverged from single-pass"
                );
                assert_eq!(out.passes.len(), 2);
                let records: u64 = out.output.len() as u64;
                for p in &out.passes {
                    assert_eq!(
                        p.records_merged, records,
                        "every record moves once per pass"
                    );
                }
                if let Some(dir) = root {
                    // The executor removed each pass's staging directory.
                    let leftover = std::fs::read_dir(&dir)
                        .map(|it| it.count())
                        .unwrap_or(0);
                    assert_eq!(leftover, 0, "staging not cleaned under {}", dir.display());
                    let _ = std::fs::remove_dir_all(&dir);
                }
            }
        }
    }
}

#[test]
fn latency_backend_per_pass_busy_matches_prediction() {
    let tol = 0.02;
    let runs = form_runs(4000, 250, 83);
    assert_eq!(runs.len(), 16);
    let base = ScenarioBuilder::new(4, 2).inter(2).seed(29).build().unwrap();
    for policy in [PlanPolicy::GreedyMax, PlanPolicy::Balanced] {
        let plan = plan_merge_tree(&run_blocks(&runs), 4, policy).unwrap();
        let exec = MultiPassExecutor::new(&plan, base, opts(0, 5e-4), PassBackend::Latency);
        let out = exec.run(runs.clone()).unwrap();
        for p in &out.passes {
            let predicted = p.predicted_busy.as_secs_f64();
            let measured = p.modeled_busy.as_secs_f64();
            assert!(predicted > 0.0, "pass {} predicted nothing", p.pass);
            let ratio = measured / predicted;
            assert!(
                (ratio - 1.0).abs() <= tol,
                "{policy:?} pass {}: modeled busy {measured:.4}s vs predicted \
                 {predicted:.4}s (ratio {ratio:.4})",
                p.pass
            );
        }
    }
}

#[test]
fn interrupted_execution_leaves_stage_and_next_invocation_cleans_it() {
    let runs = form_runs(3000, 188, 47);
    assert_eq!(runs.len(), 16);
    let expect = reference(&runs);
    let base = ScenarioBuilder::new(4, 2).inter(2).seed(13).build().unwrap();
    let plan = plan_merge_tree(&run_blocks(&runs), 4, PlanPolicy::GreedyMax).unwrap();
    let root = unique_dir();

    // Crash in the window after pass 0 completes but before its staging
    // directory is removed.
    let exec = MultiPassExecutor::new(
        &plan,
        base,
        opts(0, 1.0),
        PassBackend::File { root: root.clone() },
    );
    let err = exec
        .run_with_hook(runs.clone(), |pass| {
            if pass == 0 {
                Err(pm_core::PmError::io(
                    "injected crash between passes",
                    std::io::Error::other("fault injection"),
                ))
            } else {
                Ok(())
            }
        })
        .unwrap_err();
    assert!(err.to_string().contains("injected crash"), "{err}");
    // The interrupted pass's temp files are still there; no final output
    // was staged under the root.
    assert!(root.join("pass-00").is_dir(), "crash should leave pass-00");
    let top_level: Vec<String> = std::fs::read_dir(&root)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        top_level.iter().all(|n| n.starts_with("pass-")),
        "only staging dirs expected, found {top_level:?}"
    );

    // The next invocation over the same root cleans the stale staging
    // and completes correctly.
    let out = exec.run(runs.clone()).unwrap();
    assert_eq!(out.output, expect);
    let leftover = std::fs::read_dir(&root).map(|it| it.count()).unwrap_or(0);
    assert_eq!(leftover, 0, "stale staging survived the rerun");

    // clean_stale_passes is also callable directly and idempotent.
    assert_eq!(clean_stale_passes(&root).unwrap(), 0);
    let _ = std::fs::remove_dir_all(&root);
}
