//! Reproducibility guarantees: identical seeds give bit-identical results
//! across the whole pipeline, and the workload builders derive distinct,
//! stable seeds per experiment point.

use pm_core::{MergeSim, PrefetchStrategy, ScenarioBuilder, SyncMode, run_trials};
use pm_extsort::{external_sort, generate, ExtSortConfig, RunFormation};
use pm_workload::paper::{fig2_panel, Fig2Panel};

#[test]
fn whole_reports_are_bit_identical() {
    for strategy in [
        PrefetchStrategy::None,
        PrefetchStrategy::IntraRun { n: 10 },
        PrefetchStrategy::InterRun { n: 10 },
    ] {
        let mut cfg = ScenarioBuilder::new(25, 5).build().unwrap();
        cfg.strategy = strategy;
        cfg.cache_blocks = 25 * strategy.depth() * 2;
        cfg.seed = 77;
        let a = MergeSim::run_uniform(cfg).unwrap();
        let b = MergeSim::run_uniform(cfg).unwrap();
        assert_eq!(a, b, "{strategy:?} not reproducible");
    }
}

#[test]
fn trials_are_reproducible_but_distinct() {
    let cfg = ScenarioBuilder::new(25, 5).inter(5).cache_blocks(500).build().unwrap();
    let a = run_trials(&cfg, 4).unwrap();
    let b = run_trials(&cfg, 4).unwrap();
    for (x, y) in a.reports.iter().zip(&b.reports) {
        assert_eq!(x, y);
    }
    // And the trials within one summary differ from one another.
    assert!(a.reports.windows(2).any(|w| w[0].total != w[1].total));
}

#[test]
fn sync_mode_changes_results_but_not_request_count() {
    let mut cfg = ScenarioBuilder::new(25, 5).intra(10).build().unwrap();
    cfg.seed = 5;
    cfg.sync = SyncMode::Synchronized;
    let sync = MergeSim::run_uniform(cfg).unwrap();
    cfg.sync = SyncMode::Unsynchronized;
    let unsync = MergeSim::run_uniform(cfg).unwrap();
    assert_ne!(sync.total, unsync.total);
    assert_eq!(sync.disk_requests, unsync.disk_requests);
    assert_eq!(sync.blocks_merged, unsync.blocks_merged);
}

#[test]
fn extsort_is_deterministic() {
    let input = generate::uniform(10_000, 3);
    let cfg = ExtSortConfig {
        memory_records: 1_000,
        records_per_block: 40,
        run_formation: RunFormation::LoadSort,
    };
    let a = external_sort(&input, &cfg);
    let b = external_sort(&input, &cfg);
    assert_eq!(a.output, b.output);
    assert_eq!(a.trace, b.trace);
}

#[test]
fn workload_builders_are_stable() {
    let a = fig2_panel(Fig2Panel::A, 1992);
    let b = fig2_panel(Fig2Panel::A, 1992);
    for (sa, sb) in a.iter().zip(&b) {
        assert_eq!(sa.label, sb.label);
        for (pa, pb) in sa.points.iter().zip(&sb.points) {
            assert_eq!(pa.config, pb.config);
        }
    }
}

#[test]
fn replayed_scenario_specs_reproduce_results() {
    use pm_workload::spec::ScenarioSpec;
    let mut cfg = ScenarioBuilder::new(25, 5).inter(10).cache_blocks(900).build().unwrap();
    cfg.seed = 41;
    let direct = MergeSim::run_uniform(cfg).unwrap();
    let spec = ScenarioSpec::from_config("replay", &cfg);
    let replayed = MergeSim::run_uniform(spec.to_config()).unwrap();
    assert_eq!(direct, replayed);
}
