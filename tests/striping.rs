//! Validation of the striped-layout extension: the simulator against the
//! derived closed form, and the layout trade-off the related work debated
//! (striping vs. independent disks with inter-run prefetching).

use pm_analysis::{equations, ModelParams};
use pm_core::{DataLayout, MergeConfig, PrefetchStrategy, ScenarioBuilder, SyncMode, run_trials};
use pm_stats::relative_error;

const TRIALS: u32 = 3;

fn striped_intra(k: u32, d: u32, n: u32) -> MergeConfig {
    let mut cfg = ScenarioBuilder::new(k, d).intra(n).build().unwrap();
    cfg.layout = DataLayout::Striped;
    cfg
}

#[test]
fn striped_sync_matches_closed_form() {
    let p = ModelParams::paper();
    for (k, d, n) in [(25u32, 5u32, 10u32), (25, 5, 30), (50, 5, 20)] {
        let mut cfg = striped_intra(k, d, n);
        cfg.sync = SyncMode::Synchronized;
        let sim = run_trials(&cfg, TRIALS).unwrap().mean_total_secs;
        let analytic =
            equations::total_seconds(&p, k, equations::tau_striped_intra_sync(&p, k, d, n));
        assert!(
            relative_error(sim, analytic) < 0.04,
            "k={k} D={d} N={n}: sim={sim:.1}s analytic={analytic:.1}s"
        );
    }
}

#[test]
fn striping_beats_concatenated_intra_run() {
    // Same strategy and cache; striping parallelizes every fetch.
    let striped = run_trials(&striped_intra(25, 5, 10), TRIALS).unwrap().mean_total_secs;
    let concat = run_trials(&ScenarioBuilder::new(25, 5).intra(10).build().unwrap(), TRIALS)
        .unwrap()
        .mean_total_secs;
    // Unsynchronized concatenated intra-run already overlaps ~sqrt(D)
    // disks, so striping's edge is moderate (its parallelism is within
    // each operation, not across them).
    assert!(
        striped < 0.95 * concat,
        "striped {striped:.1}s vs concatenated {concat:.1}s"
    );
}

#[test]
fn inter_run_beats_striping_at_equal_cache() {
    // The paper-era debate: declustering vs independent disks + smart
    // prefetching. At the same cache budget, inter-run prefetching
    // amortizes the max-latency over D·N blocks and wins.
    let n = 10;
    let cache = 4 * 25 * n;
    let mut striped = striped_intra(25, 5, n);
    striped.cache_blocks = cache;
    let striped_secs = run_trials(&striped, TRIALS).unwrap().mean_total_secs;
    let inter = ScenarioBuilder::new(25, 5).inter(n).cache_blocks(cache).build().unwrap();
    let inter_secs = run_trials(&inter, TRIALS).unwrap().mean_total_secs;
    assert!(
        inter_secs < striped_secs,
        "inter {inter_secs:.1}s vs striped {striped_secs:.1}s"
    );
}

#[test]
fn striped_fits_workloads_concatenation_cannot() {
    // 100 runs × 1000 blocks do not fit one disk concatenated, but striped
    // bands spread the data evenly.
    let mut cfg = striped_intra(100, 5, 4);
    cfg.cache_blocks = 400;
    assert!(cfg.validate().is_ok());
    let report = run_trials(&cfg, 1).unwrap();
    assert_eq!(report.reports[0].blocks_merged, 100_000);
}

#[test]
fn striped_rejects_inter_run() {
    let mut cfg = ScenarioBuilder::new(25, 5).inter(10).cache_blocks(1000).build().unwrap();
    cfg.layout = DataLayout::Striped;
    assert!(matches!(
        cfg.validate(),
        Err(pm_core::ConfigError::StripedInterRun)
    ));
}

#[test]
fn striped_unsync_is_not_slower_than_sync() {
    let mut sync_cfg = striped_intra(25, 5, 10);
    sync_cfg.sync = SyncMode::Synchronized;
    let sync = run_trials(&sync_cfg, TRIALS).unwrap().mean_total_secs;
    let unsync = run_trials(&striped_intra(25, 5, 10), TRIALS).unwrap().mean_total_secs;
    assert!(unsync <= sync * 1.01, "unsync {unsync:.1} vs sync {sync:.1}");
}

#[test]
fn no_prefetch_striped_still_profits_from_parallel_blocks() {
    // Even N=1 striping helps nothing (one block at a time touches one
    // disk), so striped N=1 ≈ concatenated N=1 — the gain comes only from
    // multi-block operations.
    let mut striped = ScenarioBuilder::new(25, 5).build().unwrap();
    striped.layout = DataLayout::Striped;
    striped.strategy = PrefetchStrategy::IntraRun { n: 1 };
    let s = run_trials(&striped, TRIALS).unwrap().mean_total_secs;
    let c = run_trials(&ScenarioBuilder::new(25, 5).build().unwrap(), TRIALS)
        .unwrap()
        .mean_total_secs;
    assert!(relative_error(s, c) < 0.05, "striped {s:.1} vs concat {c:.1}");
}
